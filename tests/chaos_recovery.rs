//! Checkpoint-directory chaos: the hardened recovery ladder against
//! whole-directory damage.
//!
//! [`recover_checkpoint`] must survive every way a checkpoint pair can
//! rot on disk — a flipped byte, a truncated file, a deleted file, in
//! either `bank.snap` or `state.snap` — by quarantining the damaged
//! primary and restoring the rotated `last_good/` pair, with the resumed
//! run fingerprint-identical to the uninterrupted one. When *both*
//! levels are shredded, [`restore_or_cold`] regenerates from a cold
//! start. Nothing in the ladder may panic; every dead end is a typed
//! error.

use alert_audit::scenario::registry;
use audit_game::solver::{InnerKind, SolverConfig};
use audit_runtime::checkpoint::{BANK_FILE, LAST_GOOD_DIR, QUARANTINE_DIR, STATE_FILE};
use audit_runtime::{
    corrupt_file, recover_checkpoint, restore_or_cold, AuditService, DriftConfig, FaultInjector,
    FaultPlan, FaultSite, RecoverySource, RuntimeConfig,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("audit-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(epochs: usize) -> RuntimeConfig {
    RuntimeConfig {
        epochs,
        periods_per_epoch: 3,
        seed: 13,
        solver: SolverConfig {
            inner: InnerKind::Cggs,
            n_samples: 40,
            epsilon: 0.5,
            seed: 13,
            ..Default::default()
        },
        drift: DriftConfig {
            max_stale_epochs: Some(2),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// One way to damage a file on disk.
#[derive(Clone, Copy, Debug)]
enum Damage {
    FlipByte,
    Truncate,
    Remove,
}

impl Damage {
    fn apply(self, path: &Path) {
        match self {
            Damage::FlipByte => corrupt_file(path, 3).unwrap(),
            Damage::Truncate => {
                let bytes = std::fs::read(path).unwrap();
                std::fs::write(path, &bytes[..bytes.len() / 3]).unwrap();
            }
            Damage::Remove => std::fs::remove_file(path).unwrap(),
        }
    }
}

/// Checkpoint at epoch 2 and again at epoch 3 (rotating the epoch-2 pair
/// into `last_good/`), returning the service and the uninterrupted-run
/// fingerprint to diff resumes against.
fn seeded_checkpoint(dir: &Path) -> (AuditService, u64) {
    let reg = registry();
    let scenario = reg.get("syn-seasonal").unwrap().clone();
    let service = AuditService::new(Arc::clone(&scenario), config(5));
    let want = service.run().unwrap().fingerprint();

    let mut state = service.run_until(2).unwrap();
    service.checkpoint(&state, dir).unwrap();
    let stream = service.full_alert_stream().unwrap();
    service.advance_with_stream(&mut state, 3, &stream).unwrap();
    service.checkpoint(&state, dir).unwrap();
    (service, want)
}

/// The full damage table: every file x every damage mode falls back to
/// the `last_good/` pair, quarantines the primary, and resumes
/// fingerprint-identical to the uninterrupted run.
#[test]
fn every_single_file_damage_falls_back_to_last_good() {
    for file in [BANK_FILE, STATE_FILE] {
        for damage in [Damage::FlipByte, Damage::Truncate, Damage::Remove] {
            let dir = temp_dir(&format!("{file}-{damage:?}"));
            let (service, want) = seeded_checkpoint(&dir);
            damage.apply(&dir.join(file));

            let (loaded, report) = recover_checkpoint(&dir)
                .unwrap_or_else(|e| panic!("{file}/{damage:?}: recovery failed: {e}"));
            assert_eq!(report.source, RecoverySource::LastGood, "{file}/{damage:?}");
            assert!(report.quarantined, "{file}/{damage:?}: nothing quarantined");
            assert!(report.cause.is_some());
            assert_eq!(loaded.state.epoch, 2, "{file}/{damage:?}: wrong fallback");
            // The damaged primary was preserved as evidence, not deleted.
            assert!(
                dir.join(QUARANTINE_DIR).join(STATE_FILE).is_file()
                    || dir.join(QUARANTINE_DIR).join(BANK_FILE).is_file(),
                "{file}/{damage:?}: quarantine dir empty"
            );

            let resumed = service.resume(loaded.state).unwrap();
            assert_eq!(
                resumed.fingerprint(),
                want,
                "{file}/{damage:?}: resume from last_good diverged"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Damage to the whole directory — both levels shredded — lands on the
/// cold rung of [`restore_or_cold`]: the tenant is degraded (it lost its
/// progress), never stranded, and the regenerated run is fingerprint-
/// identical to a fresh one.
#[test]
fn shredding_both_levels_falls_back_to_cold_start() {
    let dir = temp_dir("both-levels");
    let (_service, want) = seeded_checkpoint(&dir);
    for file in [BANK_FILE, STATE_FILE] {
        Damage::FlipByte.apply(&dir.join(file));
        Damage::Truncate.apply(&dir.join(LAST_GOOD_DIR).join(file));
    }

    // recover_checkpoint alone errs typed — never panics.
    match recover_checkpoint(&dir) {
        Ok(_) => panic!("both levels corrupt must not recover"),
        Err(e) => assert!(!e.to_string().is_empty()),
    }

    let reg = registry();
    let scenario = reg.get("syn-seasonal").unwrap().clone();
    let (service, state, report) = restore_or_cold(scenario, &dir, &config(5)).unwrap();
    assert_eq!(report.source, RecoverySource::Cold);
    assert!(report.quarantined);
    assert_eq!(state.epoch, 0);
    assert_eq!(service.resume(state).unwrap().fingerprint(), want);
    std::fs::remove_dir_all(&dir).ok();
}

/// A directory that never existed is the trivial cold start: nothing to
/// quarantine, and the regenerated run matches a fresh one exactly.
#[test]
fn missing_directory_is_a_clean_cold_start() {
    let dir = temp_dir("missing");
    let reg = registry();
    let scenario = reg.get("syn-a").unwrap().clone();
    let (service, state, report) = restore_or_cold(scenario.clone(), &dir, &config(3)).unwrap();
    assert_eq!(report.source, RecoverySource::Cold);
    assert!(!report.quarantined);
    assert_eq!(state.epoch, 0);
    let resumed = service.resume(state).unwrap();
    let fresh = AuditService::new(scenario, config(3)).run().unwrap();
    assert_eq!(resumed.fingerprint(), fresh.fingerprint());
    std::fs::remove_dir_all(&dir).ok();
}

/// The injected checkpoint faults drive the same ladder end to end: a
/// `CheckpointWrite` fault tears the primary as it is saved, a
/// `CheckpointRead` fault rots it before the read-back; both restores
/// land on `last_good/` and resume fingerprint-identical.
#[test]
fn injected_checkpoint_faults_recover_through_last_good() {
    // --- CheckpointWrite: fires inside AuditService::checkpoint at the
    // state epoch being saved (epoch 3, the second checkpoint).
    let dir = temp_dir("inject-write");
    let reg = registry();
    let scenario = reg.get("syn-seasonal").unwrap().clone();
    let plan = Arc::new(FaultPlan::new().inject("w", 3, FaultSite::CheckpointWrite));
    let service = AuditService::new(Arc::clone(&scenario), config(5))
        .with_injector(FaultInjector::new(Arc::clone(&plan), "w"));
    let want = service.run().unwrap().fingerprint();
    let mut state = service.run_until(2).unwrap();
    service.checkpoint(&state, &dir).unwrap(); // epoch 2: clean
    let stream = service.full_alert_stream().unwrap();
    service.advance_with_stream(&mut state, 3, &stream).unwrap();
    service.checkpoint(&state, &dir).unwrap(); // epoch 3: torn write

    let (loaded, report) = recover_checkpoint(&dir).unwrap();
    assert_eq!(report.source, RecoverySource::LastGood);
    assert_eq!(loaded.state.epoch, 2);
    assert_eq!(service.resume(loaded.state).unwrap().fingerprint(), want);
    std::fs::remove_dir_all(&dir).ok();

    // --- CheckpointRead: the harness corrupts between save and restore.
    let dir = temp_dir("inject-read");
    let plan = Arc::new(FaultPlan::new().inject("r", 3, FaultSite::CheckpointRead));
    let injector = FaultInjector::new(Arc::clone(&plan), "r");
    let (service, want) = seeded_checkpoint(&dir);
    assert!(injector.corrupt_for_read(3, &dir.join(STATE_FILE)).unwrap());
    // One-shot: the same fault never fires twice.
    assert!(!injector.corrupt_for_read(3, &dir.join(STATE_FILE)).unwrap());

    let (loaded, report) = recover_checkpoint(&dir).unwrap();
    assert_eq!(report.source, RecoverySource::LastGood);
    assert_eq!(loaded.state.epoch, 2);
    assert_eq!(service.resume(loaded.state).unwrap().fingerprint(), want);
    std::fs::remove_dir_all(&dir).ok();
}
