//! P2/P3 — solver pipeline costs on Syn A: exact master vs CGGS, ISHM
//! sweeps per step size, and one brute-force point.

use audit_game::brute_force::solve_brute_force;
use audit_game::cggs::Cggs;
use audit_game::datasets::syn_a_with_budget;
use audit_game::detection::{DetectionEstimator, DetectionModel};
use audit_game::ishm::{ExactEvaluator, Ishm, IshmConfig};
use audit_game::master::MasterSolver;
use audit_game::ordering::AuditOrder;
use audit_game::payoff::PayoffMatrix;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const SAMPLES: usize = 200;

fn bench_master_exact_vs_cggs(c: &mut Criterion) {
    let spec = syn_a_with_budget(6.0);
    let bank = spec.sample_bank(SAMPLES, 0);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
    let thresholds = vec![2.0, 2.0, 2.0, 2.0];
    let all_orders = AuditOrder::enumerate_all(4);

    let mut group = c.benchmark_group("master_solve");
    group.sample_size(20);
    group.bench_function("exact_all_24_orders", |b| {
        b.iter(|| {
            let m = PayoffMatrix::build(&spec, &est, all_orders.clone(), &thresholds);
            MasterSolver::solve(&spec, &m).expect("solves")
        })
    });
    group.bench_function("cggs_column_generation", |b| {
        b.iter(|| {
            Cggs::default()
                .solve(&spec, &est, &thresholds)
                .expect("solves")
        })
    });
    group.bench_function("primal_orientation_cross_check", |b| {
        b.iter(|| {
            let m = PayoffMatrix::build(&spec, &est, all_orders.clone(), &thresholds);
            MasterSolver::solve_primal(&spec, &m).expect("solves")
        })
    });
    group.finish();
}

fn bench_ishm_epsilon(c: &mut Criterion) {
    let spec = syn_a_with_budget(6.0);
    let bank = spec.sample_bank(SAMPLES, 0);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);

    let mut group = c.benchmark_group("ishm_sweep");
    group.sample_size(10);
    for &eps in &[0.1f64, 0.25, 0.5] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            b.iter(|| {
                let mut eval = ExactEvaluator::new(&spec, est);
                Ishm::new(IshmConfig {
                    epsilon: eps,
                    ..Default::default()
                })
                .solve(&spec, &mut eval)
                .expect("solves")
            })
        });
    }
    group.finish();
}

fn bench_brute_force_point(c: &mut Criterion) {
    let spec = syn_a_with_budget(2.0);
    // Smaller bank: brute force scans 7680 lattice points per iteration.
    let bank = spec.sample_bank(50, 0);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
    let orders = AuditOrder::enumerate_all(4);

    let mut group = c.benchmark_group("brute_force");
    group.sample_size(10);
    group.bench_function("syn_a_b2_50_samples", |b| {
        b.iter(|| solve_brute_force(&spec, &est, &orders).expect("solves"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_master_exact_vs_cggs,
    bench_ishm_epsilon,
    bench_brute_force_point
);
criterion_main!(benches);
