//! Advanced usage: organizational precedence constraints, alternative
//! detection models, and the NP-hardness reduction as a worked object.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use alert_audit::game::cggs::{Cggs, CggsConfig};
use alert_audit::game::detection::{DetectionEstimator, DetectionModel};
use alert_audit::game::hardness::{knapsack_to_oap, solve_knapsack, KnapsackInstance};
use alert_audit::game::ordering::PrecedenceConstraints;

fn main() {
    // ------------------------------------------------------------------
    // 1. Precedence-constrained auditing: organizational policy demands
    //    that Type 1 alerts (index 0) are always audited before Type 4
    //    alerts (index 3). Base game: the registry's `syn-a-b6`.
    // ------------------------------------------------------------------
    let spec = alert_audit::scenario::registry()
        .build("syn-a-b6", 0)
        .expect("registered scenario");
    let bank = spec.sample_bank(400, 3);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
    let thresholds = vec![2.0, 2.0, 2.0, 2.0];

    let unconstrained = Cggs::default()
        .solve(&spec, &est, &thresholds)
        .expect("solves");
    let precedence = PrecedenceConstraints::new(vec![(0, 3)], 4).expect("acyclic");
    let constrained = Cggs::new(CggsConfig {
        precedence,
        ..Default::default()
    })
    .solve(&spec, &est, &thresholds)
    .expect("solves");
    println!("Syn A @ B=6, thresholds [2,2,2,2]:");
    println!(
        "  unconstrained loss:          {:.4}",
        unconstrained.master.value
    );
    println!(
        "  with 'type 1 before type 4': {:.4}  (constraints can only cost)",
        constrained.master.value
    );
    for o in &constrained.orders {
        assert!(o.position(0) < o.position(3));
    }

    // ------------------------------------------------------------------
    // 2. Detection-model sensitivity: the paper's approximation vs the
    //    attack-inclusive and operational-recourse variants.
    // ------------------------------------------------------------------
    println!("\ndetection-model sensitivity (same thresholds):");
    for (name, model) in [
        ("paper approximation", DetectionModel::PaperApprox),
        ("attack-inclusive   ", DetectionModel::AttackInclusive),
        ("operational recourse", DetectionModel::Operational),
    ] {
        let est = DetectionEstimator::new(&spec, &bank, model);
        let out = Cggs::default()
            .solve(&spec, &est, &thresholds)
            .expect("solves");
        println!("  {name}: loss {:.4}", out.master.value);
    }

    // ------------------------------------------------------------------
    // 3. Theorem 1 as code: a knapsack instance and its OAP twin.
    // ------------------------------------------------------------------
    let inst = KnapsackInstance::new(vec![2, 3, 4, 5], vec![3, 4, 5, 6], 5);
    let dp = solve_knapsack(&inst);
    let oap = knapsack_to_oap(&inst);
    println!(
        "\nknapsack OPT = {} (items {:?}) → OAP instance with {} attackers, budget {}",
        dp.value,
        dp.items,
        oap.n_attackers(),
        oap.budget
    );
    println!(
        "optimal auditing loss must equal |E| − OPT = {}",
        oap.n_attackers() as u64 - dp.value
    );
}
