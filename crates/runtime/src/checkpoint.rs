//! Persistent service checkpoints: freeze the epoch loop mid-run, thaw it
//! in a fresh process, finish with a bit-identical report.
//!
//! A checkpoint directory holds two snapshot containers (see
//! [`stochastics::snapshot`] for the on-disk format):
//!
//! * **`bank.snap`** — a scenario snapshot (`KIND_SCENARIO_BANK`):
//!   provenance (scenario key + service seed), the *committed* spec
//!   persisted by constructor parameters and fingerprint-verified on
//!   load, and the solver's common-random-number sample bank for that
//!   spec. The spec here may be a post-refit spec that no registry build
//!   can reproduce — which is exactly why it is persisted rather than
//!   rebuilt; the bank, by contrast, is redundant
//!   (`spec.sample_bank(n_samples, solver_seed)` regenerates it
//!   bit-exactly) and doubles as an end-to-end integrity probe: restore
//!   regenerates and compares.
//! * **`state.snap`** — the runtime state (`KIND_RUNTIME_STATE`): the
//!   full [`RuntimeConfig`] (so restore needs no flags re-specified), the
//!   epoch cursor, the incumbent [`AuditPolicy`] plus the [`WarmStart`]
//!   derived from it, the engine cache counters, the drift tracker
//!   (recent windows exactly, lifetime moments by their f64 bits), and
//!   every recorded [`EpochTelemetry`]. The cursor also stores the
//!   **fingerprint of the partial report** — the same
//!   [`RuntimeReport::fingerprint`] the property suite pins — and restore
//!   recomputes it over the decoded records, so a checkpoint whose
//!   telemetry chain was tampered with (even checksum-consistently, by
//!   rewriting both) still has to forge a matching FNV chain to load.
//!
//! Not persisted, recomputed instead: the scenario's alert stream (a pure
//! function of the scenario and seed), per-period execution RNG streams
//! (derived — see [`crate::service::EXEC_STREAM_BASE`]), and the
//! predicted-`Pal` vector (a pure function of spec, policy and solver
//! config). Decoding never panics: every structural assumption is checked
//! first and surfaces as a typed [`PersistError`].

use crate::online::{DriftConfig, OnlineFit};
use crate::service::{predicted_pal, RuntimeConfig, ServiceState};
use crate::telemetry::{EpochTelemetry, RuntimeReport};
use audit_game::detection::{CacheStats, DetectionModel};
use audit_game::persist::{
    decode_policy, decode_warm_start, encode_policy, encode_warm_start, load_scenario_snapshot,
    save_scenario_snapshot, PersistError, KIND_RUNTIME_STATE,
};
use audit_game::solver::{DegradeReason, InnerKind, SolverConfig, WarmStart};
use std::path::Path;
use stochastics::snapshot::{
    BankReadOptions, SectionReader, SectionWriter, Snapshot, SnapshotError,
};
use stochastics::StreamingMoments;

/// File name of the scenario snapshot (spec + sample bank) in a
/// checkpoint directory.
pub const BANK_FILE: &str = "bank.snap";
/// File name of the runtime-state snapshot in a checkpoint directory.
pub const STATE_FILE: &str = "state.snap";
/// Subdirectory holding the previous container-valid checkpoint pair,
/// rotated there by [`save_checkpoint`] before each overwrite.
pub const LAST_GOOD_DIR: &str = "last_good";
/// Subdirectory a corrupt primary pair is moved to by
/// [`recover_checkpoint`], preserving the evidence for post-mortems
/// instead of silently overwriting it.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Section tag: the full [`RuntimeConfig`].
pub const TAG_RT_CONFIG: u64 = 0x40;
/// Section tag: epoch cursor, scalars, and the telemetry-chain
/// fingerprint.
pub const TAG_RT_CURSOR: u64 = 0x41;
/// Section tag: detection-engine cache counters.
pub const TAG_RT_CACHE: u64 = 0x42;
/// Section tag: the drift tracker (windows + lifetime moments).
pub const TAG_RT_FIT: u64 = 0x43;
/// Section tag: recorded per-epoch telemetry.
pub const TAG_RT_TELEMETRY: u64 = 0x44;

/// A decoded checkpoint: which scenario it belongs to, the configuration
/// the run was started with, and the mid-run state ready for
/// [`crate::service::AuditService::resume`].
pub struct LoadedCheckpoint {
    /// Registry key of the scenario the checkpoint was taken on.
    pub scenario_key: String,
    /// The persisted run configuration.
    pub config: RuntimeConfig,
    /// The reconstructed loop state.
    pub state: ServiceState,
}

// ---------------------------------------------------------------------
// Option helpers (presence word + value)
// ---------------------------------------------------------------------

fn put_opt_usize(w: &mut SectionWriter, v: Option<usize>) {
    w.put_bool(v.is_some());
    if let Some(x) = v {
        w.put_usize(x);
    }
}

fn get_opt_usize(r: &mut SectionReader<'_>) -> Result<Option<usize>, SnapshotError> {
    Ok(if r.get_bool()? {
        Some(r.get_usize()?)
    } else {
        None
    })
}

fn put_opt_f64(w: &mut SectionWriter, v: Option<f64>) {
    w.put_bool(v.is_some());
    if let Some(x) = v {
        w.put_f64(x);
    }
}

fn get_opt_f64(r: &mut SectionReader<'_>) -> Result<Option<f64>, SnapshotError> {
    Ok(if r.get_bool()? {
        Some(r.get_f64()?)
    } else {
        None
    })
}

// ---------------------------------------------------------------------
// RuntimeConfig codec
// ---------------------------------------------------------------------

fn encode_config(snap: &mut Snapshot, cfg: &RuntimeConfig) {
    let mut w = SectionWriter::new();
    w.put_usize(cfg.epochs);
    w.put_usize(cfg.periods_per_epoch);
    w.put_u64(cfg.seed);
    w.put_f64(cfg.solver.epsilon);
    w.put_usize(cfg.solver.n_samples);
    w.put_u64(cfg.solver.seed);
    w.put_u64(match cfg.solver.inner {
        InnerKind::Auto => 0,
        InnerKind::Exact => 1,
        InnerKind::Cggs => 2,
        InnerKind::Decomposed => 3,
    });
    w.put_u64(match cfg.solver.detection {
        DetectionModel::PaperApprox => 0,
        DetectionModel::AttackInclusive => 1,
        DetectionModel::Operational => 2,
    });
    w.put_bool(cfg.solver.dedup_actions);
    w.put_usize(cfg.solver.threads);
    w.put_usize(cfg.drift.window_periods);
    w.put_f64(cfg.drift.ks_threshold);
    w.put_usize(cfg.drift.cooldown_epochs);
    put_opt_usize(&mut w, cfg.drift.max_stale_epochs);
    w.put_f64(cfg.drift.fit_coverage);
    w.put_bool(cfg.warm_start);
    w.put_bool(cfg.compare_cold);
    put_opt_usize(&mut w, cfg.solver.work_budget);
    snap.add_section(TAG_RT_CONFIG, w);
}

fn decode_config(snap: &Snapshot) -> Result<RuntimeConfig, PersistError> {
    let mut r = snap.section(TAG_RT_CONFIG)?;
    let epochs = r.get_usize()?;
    let periods_per_epoch = r.get_usize()?;
    let seed = r.get_u64()?;
    let epsilon = r.get_f64()?;
    let n_samples = r.get_usize()?;
    let solver_seed = r.get_u64()?;
    let inner = match r.get_u64()? {
        0 => InnerKind::Auto,
        1 => InnerKind::Exact,
        2 => InnerKind::Cggs,
        3 => InnerKind::Decomposed,
        k => return Err(PersistError::Spec(format!("unknown inner kind {k}"))),
    };
    let detection = match r.get_u64()? {
        0 => DetectionModel::PaperApprox,
        1 => DetectionModel::AttackInclusive,
        2 => DetectionModel::Operational,
        k => return Err(PersistError::Spec(format!("unknown detection model {k}"))),
    };
    let dedup_actions = r.get_bool()?;
    let threads = r.get_usize()?;
    let window_periods = r.get_usize()?;
    let ks_threshold = r.get_f64()?;
    let cooldown_epochs = r.get_usize()?;
    let max_stale_epochs = get_opt_usize(&mut r)?;
    let fit_coverage = r.get_f64()?;
    let warm_start = r.get_bool()?;
    let compare_cold = r.get_bool()?;
    let work_budget = get_opt_usize(&mut r)?;
    if epochs == 0 || periods_per_epoch == 0 {
        return Err(PersistError::Spec("empty epoch horizon".into()));
    }
    if window_periods == 0 || n_samples == 0 {
        return Err(PersistError::Spec("empty window or sample bank".into()));
    }
    if !(epsilon.is_finite() && ks_threshold.is_finite() && fit_coverage.is_finite()) {
        return Err(PersistError::Spec("non-finite configuration scalar".into()));
    }
    Ok(RuntimeConfig {
        epochs,
        periods_per_epoch,
        seed,
        solver: SolverConfig {
            epsilon,
            n_samples,
            seed: solver_seed,
            inner,
            detection,
            dedup_actions,
            threads,
            work_budget,
        },
        drift: DriftConfig {
            window_periods,
            ks_threshold,
            cooldown_epochs,
            max_stale_epochs,
            fit_coverage,
        },
        warm_start,
        compare_cold,
    })
}

// ---------------------------------------------------------------------
// Cursor / cache / fit / telemetry codecs
// ---------------------------------------------------------------------

struct Cursor {
    key: String,
    epoch: usize,
    next_alert_id: u64,
    epochs_since_resolve: usize,
    loss: f64,
    initial_objective: f64,
    initial_solve_millis: f64,
    attacker_belief: Vec<f64>,
    telemetry_fingerprint: u64,
}

fn encode_cursor(snap: &mut Snapshot, key: &str, state: &ServiceState, fingerprint: u64) {
    let mut w = SectionWriter::new();
    w.put_str(key);
    w.put_usize(state.epoch);
    w.put_u64(state.next_alert_id);
    w.put_usize(state.epochs_since_resolve);
    w.put_f64(state.loss);
    w.put_f64(state.initial_objective);
    w.put_f64(state.initial_solve_millis);
    w.put_f64s(&state.attacker_belief);
    w.put_u64(fingerprint);
    snap.add_section(TAG_RT_CURSOR, w);
}

fn decode_cursor(snap: &Snapshot) -> Result<Cursor, PersistError> {
    let mut r = snap.section(TAG_RT_CURSOR)?;
    let key = r.get_str()?;
    let epoch = r.get_usize()?;
    let next_alert_id = r.get_u64()?;
    let epochs_since_resolve = r.get_usize()?;
    let loss = r.get_f64()?;
    let initial_objective = r.get_f64()?;
    let initial_solve_millis = r.get_f64()?;
    let attacker_belief = r.get_f64s()?;
    let telemetry_fingerprint = r.get_u64()?;
    if !attacker_belief.iter().all(|b| b.is_finite()) {
        return Err(PersistError::Spec(
            "non-finite attacker belief in cursor".into(),
        ));
    }
    Ok(Cursor {
        key,
        epoch,
        next_alert_id,
        epochs_since_resolve,
        loss,
        initial_objective,
        initial_solve_millis,
        attacker_belief,
        telemetry_fingerprint,
    })
}

fn encode_cache(snap: &mut Snapshot, c: &CacheStats) {
    let mut w = SectionWriter::new();
    w.put_u64(c.hits);
    w.put_u64(c.misses);
    w.put_usize(c.entries);
    w.put_u64(c.evictions);
    w.put_usize(c.state_entries);
    w.put_u64(c.state_hits);
    w.put_u64(c.state_evictions);
    w.put_u64(c.columns_evaluated);
    w.put_u64(c.columns_saved);
    snap.add_section(TAG_RT_CACHE, w);
}

fn decode_cache(snap: &Snapshot) -> Result<CacheStats, PersistError> {
    let mut r = snap.section(TAG_RT_CACHE)?;
    Ok(CacheStats {
        hits: r.get_u64()?,
        misses: r.get_u64()?,
        entries: r.get_usize()?,
        evictions: r.get_u64()?,
        state_entries: r.get_usize()?,
        state_hits: r.get_u64()?,
        state_evictions: r.get_u64()?,
        columns_evaluated: r.get_u64()?,
        columns_saved: r.get_u64()?,
    })
}

fn encode_fit(snap: &mut Snapshot, fit: &OnlineFit) {
    let mut w = SectionWriter::new();
    w.put_usize(fit.window_cap());
    w.put_usize(fit.periods());
    w.put_usize(fit.n_types());
    for t in 0..fit.n_types() {
        w.put_u64s(fit.window(t));
        let m = fit.lifetime(t);
        w.put_u64(m.count());
        w.put_f64(m.mean());
        w.put_f64(m.m2());
        w.put_u64(m.max());
    }
    snap.add_section(TAG_RT_FIT, w);
}

fn decode_fit(snap: &Snapshot) -> Result<OnlineFit, PersistError> {
    let mut r = snap.section(TAG_RT_FIT)?;
    let window_cap = r.get_usize()?;
    let periods = r.get_usize()?;
    let n_types = r.get_usize()?;
    if n_types == 0 || window_cap == 0 {
        return Err(PersistError::Spec("empty drift tracker".into()));
    }
    let mut windows = Vec::with_capacity(n_types.min(4096));
    let mut lifetime = Vec::with_capacity(n_types.min(4096));
    for t in 0..n_types {
        let window = r.get_u64s()?;
        if window.len() > window_cap.min(periods) {
            return Err(PersistError::Spec(format!(
                "drift window of type {t} holds {} entries, capacity {window_cap} over {periods} \
                 periods",
                window.len()
            )));
        }
        let n = r.get_u64()?;
        let mean = r.get_f64()?;
        let m2 = r.get_f64()?;
        let max = r.get_u64()?;
        if !(mean.is_finite() && m2.is_finite()) || m2 < 0.0 {
            return Err(PersistError::Spec(format!(
                "lifetime moments of type {t} are not finite"
            )));
        }
        if n as usize != periods {
            return Err(PersistError::Spec(format!(
                "lifetime moments of type {t} cover {n} periods, cursor says {periods}"
            )));
        }
        windows.push(window);
        lifetime.push(StreamingMoments::from_parts(n, mean, m2, max));
    }
    Ok(OnlineFit::from_parts(
        window_cap, periods, windows, lifetime,
    ))
}

/// Inverse of [`DegradeReason::code`] for the telemetry codec.
fn degrade_from_code(code: u64) -> Result<DegradeReason, PersistError> {
    match code {
        1 => Ok(DegradeReason::Truncated),
        2 => Ok(DegradeReason::KeptIncumbent),
        c if c >= 16 => Ok(DegradeReason::Degraded {
            tiers: (c - 16) as usize,
        }),
        c => Err(PersistError::Spec(format!("unknown degrade code {c}"))),
    }
}

fn encode_telemetry(snap: &mut Snapshot, records: &[EpochTelemetry]) {
    let mut w = SectionWriter::new();
    w.put_usize(records.len());
    for e in records {
        w.put_usize(e.epoch);
        w.put_usize(e.periods);
        w.put_u64s(&e.alerts_seen);
        w.put_u64s(&e.alerts_audited);
        w.put_f64(e.mean_spent);
        w.put_f64s(&e.realized_rate);
        w.put_f64s(&e.predicted_pal);
        w.put_f64(e.pal_gap);
        w.put_f64(e.max_ks);
        w.put_bool(e.drift);
        w.put_bool(e.resolved);
        w.put_usize(e.epochs_since_resolve);
        w.put_f64(e.objective);
        w.put_f64s(&e.thresholds);
        w.put_u64(e.attacks_launched);
        w.put_u64(e.attacks_detected);
        w.put_f64(e.attacker_utility);
        w.put_f64(e.auditor_damage);
        put_opt_usize(&mut w, e.solve_explored);
        put_opt_f64(&mut w, e.solve_millis);
        put_opt_f64(&mut w, e.cold_objective);
        put_opt_usize(&mut w, e.cold_explored);
        put_opt_f64(&mut w, e.cold_millis);
        w.put_bool(e.degrade.is_some());
        if let Some(d) = &e.degrade {
            w.put_u64(d.code());
        }
        w.put_bool(e.ks_degenerate);
    }
    snap.add_section(TAG_RT_TELEMETRY, w);
}

fn decode_telemetry(snap: &Snapshot) -> Result<Vec<EpochTelemetry>, PersistError> {
    let mut r = snap.section(TAG_RT_TELEMETRY)?;
    let count = r.get_usize()?;
    let mut records = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        records.push(EpochTelemetry {
            epoch: r.get_usize()?,
            periods: r.get_usize()?,
            alerts_seen: r.get_u64s()?,
            alerts_audited: r.get_u64s()?,
            mean_spent: r.get_f64()?,
            realized_rate: r.get_f64s()?,
            predicted_pal: r.get_f64s()?,
            pal_gap: r.get_f64()?,
            max_ks: r.get_f64()?,
            drift: r.get_bool()?,
            resolved: r.get_bool()?,
            epochs_since_resolve: r.get_usize()?,
            objective: r.get_f64()?,
            thresholds: r.get_f64s()?,
            attacks_launched: r.get_u64()?,
            attacks_detected: r.get_u64()?,
            attacker_utility: r.get_f64()?,
            auditor_damage: r.get_f64()?,
            solve_explored: get_opt_usize(&mut r)?,
            solve_millis: get_opt_f64(&mut r)?,
            cold_objective: get_opt_f64(&mut r)?,
            cold_explored: get_opt_usize(&mut r)?,
            cold_millis: get_opt_f64(&mut r)?,
            degrade: if r.get_bool()? {
                Some(degrade_from_code(r.get_u64()?)?)
            } else {
                None
            },
            ks_degenerate: r.get_bool()?,
        });
    }
    Ok(records)
}

/// The partial-report fingerprint the cursor chains: identical to
/// [`RuntimeReport::fingerprint`] over the epochs recorded so far.
fn partial_fingerprint(
    key: &str,
    cfg: &RuntimeConfig,
    state: &ServiceState,
    cache: &CacheStats,
) -> u64 {
    RuntimeReport {
        scenario: key.to_string(),
        seed: cfg.seed,
        periods_per_epoch: cfg.periods_per_epoch,
        initial_objective: state.initial_objective,
        initial_solve_millis: state.initial_solve_millis,
        engine_cache: *cache,
        epochs: state.records.clone(),
    }
    .fingerprint()
}

// ---------------------------------------------------------------------
// Save / load
// ---------------------------------------------------------------------

fn io_err(path: &Path, e: std::io::Error) -> PersistError {
    PersistError::Snapshot(SnapshotError::Io(format!("{}: {e}", path.display())))
}

/// Rotate the current checkpoint pair into `dir/last_good/`, but only if
/// both containers still pass their integrity checks (magic, version,
/// checksum, framing) — rotating an already-rotten pair would evict a
/// good fallback for a bad one. The primary files are copied, not moved:
/// the save that follows replaces them atomically.
fn rotate_last_good(dir: &Path) -> Result<(), PersistError> {
    let bank = dir.join(BANK_FILE);
    let state = dir.join(STATE_FILE);
    if !bank.is_file() || !state.is_file() {
        return Ok(());
    }
    if Snapshot::read_from(&bank).is_err() || Snapshot::read_from(&state).is_err() {
        return Ok(());
    }
    let good = dir.join(LAST_GOOD_DIR);
    std::fs::create_dir_all(&good).map_err(|e| io_err(&good, e))?;
    for name in [BANK_FILE, STATE_FILE] {
        let to = good.join(name);
        std::fs::copy(dir.join(name), &to).map_err(|e| io_err(&to, e))?;
    }
    Ok(())
}

/// Persist a mid-run service state to `dir` (created if missing):
/// `bank.snap` with the committed spec + solver sample bank, `state.snap`
/// with everything else. See the module docs for the layout. The
/// previous pair, if still container-valid, is first rotated into
/// `dir/last_good/` so one torn or rotten write never strands the
/// service (see [`recover_checkpoint`]).
pub fn save_checkpoint(
    dir: &Path,
    scenario_key: &str,
    cfg: &RuntimeConfig,
    state: &ServiceState,
) -> Result<(), PersistError> {
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    rotate_last_good(dir)?;
    let bank = state
        .spec
        .sample_bank(cfg.solver.n_samples, cfg.solver.seed);
    save_scenario_snapshot(
        &dir.join(BANK_FILE),
        scenario_key,
        cfg.seed,
        &state.spec,
        &bank,
    )?;

    let mut snap = Snapshot::new(KIND_RUNTIME_STATE);
    encode_config(&mut snap, cfg);
    let fingerprint = partial_fingerprint(scenario_key, cfg, state, &state.engine_cache);
    encode_cursor(&mut snap, scenario_key, state, fingerprint);
    encode_policy(&mut snap, &state.policy);
    encode_warm_start(&mut snap, &WarmStart::from_policy(&state.policy));
    encode_cache(&mut snap, &state.engine_cache);
    encode_fit(&mut snap, &state.fit);
    encode_telemetry(&mut snap, &state.records);
    snap.write_to(&dir.join(STATE_FILE))?;
    Ok(())
}

/// Load and fully verify a checkpoint directory. Beyond the per-file
/// container checks (magic, version, checksum, section framing), this
/// cross-validates the two files and the chain of invariants the epoch
/// loop maintains: spec fingerprint, bank-vs-regeneration equality,
/// scenario-key agreement, telemetry-chain fingerprint, record count vs
/// epoch cursor, drift-tracker period count, and alert-id continuity.
pub fn load_checkpoint(dir: &Path) -> Result<LoadedCheckpoint, PersistError> {
    let snap = Snapshot::read_from(&dir.join(STATE_FILE))?;
    snap.expect_kind(KIND_RUNTIME_STATE)?;
    let config = decode_config(&snap)?;
    let cursor = decode_cursor(&snap)?;
    let policy = decode_policy(&snap)?;
    let warm = decode_warm_start(&snap)?;
    let cache = decode_cache(&snap)?;
    let fit = decode_fit(&snap)?;
    let records = decode_telemetry(&snap)?;

    if warm.orders != policy.orders || warm.thresholds.as_deref() != Some(&policy.thresholds[..]) {
        return Err(PersistError::Provenance(
            "persisted warm start disagrees with the incumbent policy".into(),
        ));
    }
    if cursor.epoch > config.epochs {
        return Err(PersistError::Provenance(format!(
            "cursor at epoch {} beyond the {}-epoch horizon",
            cursor.epoch, config.epochs
        )));
    }
    if records.len() != cursor.epoch {
        return Err(PersistError::Provenance(format!(
            "{} telemetry records for a cursor at epoch {}",
            records.len(),
            cursor.epoch
        )));
    }
    if fit.periods() != cursor.epoch * config.periods_per_epoch {
        return Err(PersistError::Provenance(format!(
            "drift tracker observed {} periods, cursor implies {}",
            fit.periods(),
            cursor.epoch * config.periods_per_epoch
        )));
    }
    let total_alerts: u64 = records
        .iter()
        .map(|e| e.alerts_seen.iter().sum::<u64>())
        .sum();
    if total_alerts != cursor.next_alert_id {
        return Err(PersistError::Provenance(format!(
            "telemetry accounts for {total_alerts} alerts, cursor for {}",
            cursor.next_alert_id
        )));
    }

    let loaded = load_scenario_snapshot(&dir.join(BANK_FILE), BankReadOptions::default())?;
    if loaded.key != cursor.key {
        return Err(PersistError::Provenance(format!(
            "state file belongs to scenario '{}', bank file to '{}'",
            cursor.key, loaded.key
        )));
    }
    if loaded.seed != config.seed {
        return Err(PersistError::Provenance(format!(
            "bank snapshot was taken at seed {}, config says {}",
            loaded.seed, config.seed
        )));
    }
    if policy.thresholds.len() != loaded.spec.n_types() || fit.n_types() != loaded.spec.n_types() {
        return Err(PersistError::Provenance(
            "policy or drift tracker arity disagrees with the spec".into(),
        ));
    }
    if cursor.attacker_belief.len() != loaded.spec.n_types() {
        return Err(PersistError::Provenance(format!(
            "attacker belief covers {} types, spec has {}",
            cursor.attacker_belief.len(),
            loaded.spec.n_types()
        )));
    }
    // End-to-end integrity probe: the persisted bank must equal a fresh
    // regeneration from the (fingerprint-verified) spec.
    let regen = loaded
        .spec
        .sample_bank(config.solver.n_samples, config.solver.seed);
    if regen.columns_flat() != loaded.bank.columns_flat() {
        return Err(PersistError::Provenance(
            "persisted sample bank does not match regeneration from the spec".into(),
        ));
    }

    // Derived state is recomputed, bit-identically, from persisted inputs.
    let predicted = predicted_pal(&loaded.spec, &policy, &config.solver, None);

    let state = ServiceState {
        epoch: cursor.epoch,
        spec: loaded.spec,
        policy,
        loss: cursor.loss,
        engine_cache: cache,
        fit,
        next_alert_id: cursor.next_alert_id,
        epochs_since_resolve: cursor.epochs_since_resolve,
        initial_objective: cursor.initial_objective,
        initial_solve_millis: cursor.initial_solve_millis,
        predicted,
        attacker_belief: cursor.attacker_belief,
        records,
    };
    // Close the telemetry chain: the partial report reconstructed from
    // this state must fingerprint to the value the cursor recorded.
    let computed = partial_fingerprint(&cursor.key, &config, &state, &state.engine_cache);
    if computed != cursor.telemetry_fingerprint {
        return Err(PersistError::FingerprintMismatch {
            stored: cursor.telemetry_fingerprint,
            computed,
        });
    }
    Ok(LoadedCheckpoint {
        scenario_key: cursor.key,
        config,
        state,
    })
}

// ---------------------------------------------------------------------
// Hardened recovery
// ---------------------------------------------------------------------

/// Where a hardened restore found its state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverySource {
    /// The primary pair loaded and verified cleanly.
    Primary,
    /// The primary pair was corrupt; the rotated `last_good/` pair loaded.
    LastGood,
    /// Both pairs were unusable (or no checkpoint existed); the service
    /// was regenerated from a cold start.
    Cold,
}

impl RecoverySource {
    /// Stable string key: `primary`, `last-good`, or `cold`.
    pub fn key(&self) -> &'static str {
        match self {
            RecoverySource::Primary => "primary",
            RecoverySource::LastGood => "last-good",
            RecoverySource::Cold => "cold",
        }
    }
}

/// What a hardened restore did, for telemetry and grep lines.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Which fallback level served the restore.
    pub source: RecoverySource,
    /// Whether a corrupt primary pair was moved to `quarantine/`.
    pub quarantined: bool,
    /// The primary load error, when there was one.
    pub cause: Option<String>,
}

/// Move whatever exists of the primary pair into `dir/quarantine/`,
/// best-effort (recovery must not fail because evidence preservation
/// did). Returns whether anything was moved.
fn quarantine_primary(dir: &Path) -> bool {
    let qdir = dir.join(QUARANTINE_DIR);
    if std::fs::create_dir_all(&qdir).is_err() {
        return false;
    }
    let mut moved = false;
    for name in [BANK_FILE, STATE_FILE] {
        let from = dir.join(name);
        if from.is_file() && std::fs::rename(&from, qdir.join(name)).is_ok() {
            moved = true;
        }
    }
    moved
}

/// Load a checkpoint with the full fallback ladder short of a cold
/// start: primary pair first; on any load or verification failure the
/// corrupt pair is moved to `dir/quarantine/` and the `last_good/` pair
/// (rotated there by [`save_checkpoint`]) is tried. Errs only when both
/// levels fail — callers that can regenerate should use
/// [`restore_or_cold`] instead.
pub fn recover_checkpoint(dir: &Path) -> Result<(LoadedCheckpoint, RecoveryReport), PersistError> {
    let primary_err = match load_checkpoint(dir) {
        Ok(loaded) => {
            return Ok((
                loaded,
                RecoveryReport {
                    source: RecoverySource::Primary,
                    quarantined: false,
                    cause: None,
                },
            ))
        }
        Err(e) => e,
    };
    let quarantined = quarantine_primary(dir);
    match load_checkpoint(&dir.join(LAST_GOOD_DIR)) {
        Ok(loaded) => Ok((
            loaded,
            RecoveryReport {
                source: RecoverySource::LastGood,
                quarantined,
                cause: Some(primary_err.to_string()),
            },
        )),
        // The primary failure is the actionable one; the fallback's
        // failure is usually just "no last_good yet".
        Err(_) => Err(primary_err),
    }
}

/// The top of the recovery ladder: restore from `dir` via
/// [`recover_checkpoint`], and if **both** checkpoint levels are
/// unusable, regenerate the service from a cold start under
/// `fallback_config` — the supervisor's guarantee that a tenant with a
/// shredded checkpoint directory is degraded, never stranded. The
/// scenario must match a recovered checkpoint's key (that mismatch is a
/// caller bug, not corruption, and surfaces as an error).
pub fn restore_or_cold(
    scenario: std::sync::Arc<dyn audit_game::scenario::Scenario>,
    dir: &Path,
    fallback_config: &RuntimeConfig,
) -> Result<
    (crate::service::AuditService, ServiceState, RecoveryReport),
    audit_game::error::GameError,
> {
    use crate::service::AuditService;
    match recover_checkpoint(dir) {
        Ok((loaded, report)) => {
            if loaded.scenario_key != scenario.key() {
                return Err(audit_game::error::GameError::Persist(
                    PersistError::Provenance(format!(
                        "checkpoint was taken on scenario '{}', not '{}'",
                        loaded.scenario_key,
                        scenario.key()
                    )),
                ));
            }
            Ok((
                AuditService::new(scenario, loaded.config),
                loaded.state,
                report,
            ))
        }
        Err(e) => {
            let qdir = dir.join(QUARANTINE_DIR);
            let quarantined = qdir.join(STATE_FILE).is_file() || qdir.join(BANK_FILE).is_file();
            let service = AuditService::new(scenario, fallback_config.clone());
            let state = service.start_state()?;
            Ok((
                service,
                state,
                RecoveryReport {
                    source: RecoverySource::Cold,
                    quarantined,
                    cause: Some(e.to_string()),
                },
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::AuditService;
    use audit_game::scenario::registry;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("audit-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_config() -> RuntimeConfig {
        RuntimeConfig {
            epochs: 6,
            periods_per_epoch: 3,
            seed: 11,
            solver: SolverConfig {
                n_samples: 60,
                epsilon: 0.25,
                inner: InnerKind::Cggs,
                ..Default::default()
            },
            drift: DriftConfig {
                window_periods: 6,
                max_stale_epochs: Some(3),
                ..Default::default()
            },
            warm_start: true,
            compare_cold: false,
        }
    }

    #[test]
    fn checkpoint_roundtrip_restores_equivalent_state() {
        let reg = registry();
        let scenario = reg.get("syn-seasonal").unwrap().clone();
        let service = AuditService::new(Arc::clone(&scenario), small_config());
        let state = service.run_until(3).unwrap();
        let dir = temp_dir("roundtrip");
        service.checkpoint(&state, &dir).unwrap();

        let (restored_service, restored) =
            AuditService::restore(Arc::clone(&scenario), &dir).unwrap();
        assert_eq!(restored.epoch, state.epoch);
        assert_eq!(restored.next_alert_id, state.next_alert_id);
        assert_eq!(restored.epochs_since_resolve, state.epochs_since_resolve);
        assert_eq!(restored.loss.to_bits(), state.loss.to_bits());
        assert_eq!(restored.policy.thresholds, state.policy.thresholds);
        assert_eq!(restored.policy.orders, state.policy.orders);
        assert_eq!(restored.spec.fingerprint(), state.spec.fingerprint());
        assert_eq!(restored.records.len(), state.records.len());
        for t in 0..restored.fit.n_types() {
            assert_eq!(restored.fit.window(t), state.fit.window(t));
        }
        // Recomputed derived state is bit-identical too.
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&restored.predicted), bits(&state.predicted));

        // The resumed run finishes with the exact fingerprint of an
        // uninterrupted one.
        let full = service.run().unwrap();
        let resumed = restored_service.resume(restored).unwrap();
        assert_eq!(full.fingerprint(), resumed.fingerprint());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_scenario_is_rejected_on_restore() {
        let reg = registry();
        let scenario = reg.get("syn-seasonal").unwrap().clone();
        let service = AuditService::new(Arc::clone(&scenario), small_config());
        let state = service.run_until(2).unwrap();
        let dir = temp_dir("wrong-scenario");
        service.checkpoint(&state, &dir).unwrap();
        let other = reg.get("syn-a").unwrap().clone();
        assert!(AuditService::restore(other, &dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_telemetry_chain_is_rejected() {
        let reg = registry();
        let scenario = reg.get("syn-seasonal").unwrap().clone();
        let service = AuditService::new(Arc::clone(&scenario), small_config());
        let state = service.run_until(2).unwrap();
        let dir = temp_dir("tamper");
        service.checkpoint(&state, &dir).unwrap();

        // Rewrite state.snap with one telemetry counter bumped — the
        // container checksum is recomputed (so the file is
        // checksum-valid), but the cursor's chained fingerprint is not.
        let snap = Snapshot::read_from(&dir.join(STATE_FILE)).unwrap();
        let mut records = decode_telemetry(&snap).unwrap();
        records[0].alerts_audited[0] += 1;
        let mut forged = Snapshot::new(KIND_RUNTIME_STATE);
        for tag in [TAG_RT_CONFIG, TAG_RT_CURSOR] {
            let mut w = SectionWriter::new();
            let mut r = snap.section(tag).unwrap();
            while r.remaining() >= 8 {
                w.put_u64(r.get_u64().unwrap());
            }
            forged.add_section(tag, w);
        }
        encode_policy(&mut forged, &decode_policy(&snap).unwrap());
        encode_warm_start(&mut forged, &decode_warm_start(&snap).unwrap());
        encode_cache(&mut forged, &decode_cache(&snap).unwrap());
        encode_fit(&mut forged, &decode_fit(&snap).unwrap());
        encode_telemetry(&mut forged, &records);
        forged.write_to(&dir.join(STATE_FILE)).unwrap();

        // Alert accounting still matches (audited, not seen, was bumped),
        // so the failure is the fingerprint chain, not an arity check.
        assert!(matches!(
            load_checkpoint(&dir),
            Err(PersistError::FingerprintMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_files_surface_typed_io_errors() {
        let dir = temp_dir("missing");
        assert!(matches!(
            load_checkpoint(&dir),
            Err(PersistError::Snapshot(SnapshotError::Io(_)))
        ));
    }

    #[test]
    fn recovery_ladder_falls_back_to_last_good_then_cold() {
        let reg = registry();
        let scenario = reg.get("syn-seasonal").unwrap().clone();
        let service = AuditService::new(Arc::clone(&scenario), small_config());
        let dir = temp_dir("ladder");

        // First checkpoint at epoch 2: no prior pair, nothing rotated.
        let state2 = service.run_until(2).unwrap();
        service.checkpoint(&state2, &dir).unwrap();
        assert!(!dir.join(LAST_GOOD_DIR).join(STATE_FILE).is_file());

        // Second checkpoint at epoch 3 rotates the epoch-2 pair.
        let state3 = service.run_until(3).unwrap();
        service.checkpoint(&state3, &dir).unwrap();
        assert!(dir.join(LAST_GOOD_DIR).join(STATE_FILE).is_file());

        // Pristine primary: recovery uses it and quarantines nothing.
        let (loaded, report) = recover_checkpoint(&dir).unwrap();
        assert_eq!(report.source, RecoverySource::Primary);
        assert!(!report.quarantined);
        assert_eq!(loaded.state.epoch, 3);

        // Corrupt the primary state file: recovery quarantines the pair
        // and serves the rotated epoch-2 checkpoint.
        crate::supervisor::corrupt_file(&dir.join(STATE_FILE), 9).unwrap();
        let (loaded, report) = recover_checkpoint(&dir).unwrap();
        assert_eq!(report.source, RecoverySource::LastGood);
        assert!(report.quarantined);
        assert!(report.cause.is_some());
        assert_eq!(loaded.state.epoch, 2);
        assert!(dir.join(QUARANTINE_DIR).join(STATE_FILE).is_file());
        assert!(!dir.join(STATE_FILE).is_file(), "corrupt primary moved");

        // A last-good restore resumes to the same fingerprint as an
        // uninterrupted run — it is a real checkpoint, just older.
        let resumed = service.resume(loaded.state).unwrap();
        assert_eq!(resumed.fingerprint(), service.run().unwrap().fingerprint());

        // Now shred the fallback too: recover errs, restore_or_cold
        // regenerates from a cold start and reports the primary cause.
        crate::supervisor::corrupt_file(&dir.join(LAST_GOOD_DIR).join(STATE_FILE), 3).unwrap();
        assert!(recover_checkpoint(&dir).is_err());
        let (cold_service, cold_state, report) =
            restore_or_cold(Arc::clone(&scenario), &dir, &small_config()).unwrap();
        assert_eq!(report.source, RecoverySource::Cold);
        assert!(report.cause.is_some());
        assert_eq!(cold_state.epoch, 0);
        let cold_report = cold_service.resume(cold_state).unwrap();
        assert_eq!(
            cold_report.fingerprint(),
            service.run().unwrap().fingerprint(),
            "cold regeneration under the same config converges to the same run"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_never_evicts_a_good_pair_for_a_rotten_one() {
        let reg = registry();
        let scenario = reg.get("syn-seasonal").unwrap().clone();
        let service = AuditService::new(Arc::clone(&scenario), small_config());
        let dir = temp_dir("rotation-guard");
        let state2 = service.run_until(2).unwrap();
        service.checkpoint(&state2, &dir).unwrap();
        let state3 = service.run_until(3).unwrap();
        service.checkpoint(&state3, &dir).unwrap();

        // Corrupt the primary, then checkpoint again: the rotten pair
        // must NOT rotate over the good epoch-2 fallback.
        crate::supervisor::corrupt_file(&dir.join(STATE_FILE), 1).unwrap();
        let state4 = service.run_until(4).unwrap();
        service.checkpoint(&state4, &dir).unwrap();
        let good = Snapshot::read_from(&dir.join(LAST_GOOD_DIR).join(STATE_FILE));
        assert!(good.is_ok(), "last_good stayed container-valid");
        let (loaded, report) = recover_checkpoint(&dir).unwrap();
        assert_eq!(report.source, RecoverySource::Primary);
        assert_eq!(loaded.state.epoch, 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
