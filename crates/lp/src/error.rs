//! Error types for LP solving.

use std::fmt;

/// Why an LP could not be solved to optimality.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// No point satisfies all constraints and bounds. The payload is the
    /// residual phase-1 objective (total constraint violation at the best
    /// attainable point) — useful when diagnosing near-feasible models.
    Infeasible {
        /// Residual infeasibility (sum of artificial variables).
        residual: f64,
    },
    /// The objective can be improved without bound. The payload names the
    /// tableau column whose recession direction proves unboundedness.
    Unbounded {
        /// Internal column index certifying the unbounded ray.
        column: usize,
    },
    /// The pivot loop exceeded its iteration budget (see
    /// [`crate::SimplexOptions::max_iterations`]).
    IterationLimit {
        /// Number of pivots performed before giving up.
        iterations: usize,
    },
    /// A model-construction error (e.g. contradictory bounds `lo > hi`).
    InvalidModel(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible { residual } => {
                write!(f, "LP is infeasible (residual violation {residual:.3e})")
            }
            LpError::Unbounded { column } => {
                write!(f, "LP is unbounded (ray through column {column})")
            }
            LpError::IterationLimit { iterations } => {
                write!(
                    f,
                    "simplex iteration limit reached after {iterations} pivots"
                )
            }
            LpError::InvalidModel(msg) => write!(f, "invalid LP model: {msg}"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let s = LpError::Infeasible { residual: 0.5 }.to_string();
        assert!(s.contains("infeasible"));
        let s = LpError::Unbounded { column: 3 }.to_string();
        assert!(s.contains("unbounded"));
        let s = LpError::IterationLimit { iterations: 10 }.to_string();
        assert!(s.contains("10"));
        let s = LpError::InvalidModel("bad".into()).to_string();
        assert!(s.contains("bad"));
    }
}
