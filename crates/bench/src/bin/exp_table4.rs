//! Experiment E2 — paper Table IV: ISHM (exact inner LP) approximation of
//! the optimum across budgets B ∈ {2..20} and step sizes ε ∈ {0.05..0.5}.
//!
//! ```text
//! cargo run -p audit-bench --release --bin exp_table4 [budgets] [epsilons] [samples] [threads] \
//!     [--scenario <key>] [--cache-stats]
//! ```
//!
//! `--cache-stats` prints the detection engine's aggregate hit/miss/
//! eviction and trie-sharing counters after the run.

use audit_bench::cli::{
    default_threads, parse_count, parse_list, render_cache_stats, take_flag, take_scenario_flag,
};
use audit_bench::defaults::{SEED, SYN_BUDGETS, SYN_EPSILONS, SYN_SAMPLES};
use audit_bench::report::{f4, thresholds_str, Table};
use audit_bench::scenarios::resolve_base_spec;
use audit_bench::syn_experiments::ishm_grid_with_stats;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let scenario = take_scenario_flag(&mut args);
    let cache_stats = take_flag(&mut args, "--cache-stats");
    let budgets = parse_list(args.first().cloned(), &SYN_BUDGETS);
    let epsilons = parse_list(args.get(1).cloned(), &SYN_EPSILONS);
    let samples = parse_count(args.get(2).cloned(), SYN_SAMPLES);
    let threads = parse_count(args.get(3).cloned(), default_threads());
    let (key, base) = resolve_base_spec(scenario, "syn-a", SEED);
    eprintln!(
        "Table IV reproduction on {key}: ISHM with exact inner LP ({samples} samples, {threads} engine thread(s))"
    );
    let t0 = std::time::Instant::now();
    let (grid, engine_stats) =
        ishm_grid_with_stats(&base, &budgets, &epsilons, false, samples, SEED, threads)
            .expect("ISHM grid");
    let costs = base.audit_costs();

    let mut header: Vec<String> = vec!["B".into()];
    header.extend(epsilons.iter().map(|e| format!("eps={e}")));
    let mut table = Table::new(header);
    for row in &grid {
        let mut cells: Vec<String> = vec![format!("{}", row[0].budget)];
        for cell in row {
            cells.push(format!(
                "{} {}",
                f4(cell.value),
                thresholds_str(&cell.thresholds, &costs)
            ));
        }
        table.row(cells);
    }
    println!("{}", table.render());
    if cache_stats {
        println!("{}", render_cache_stats(&engine_stats));
    }
    eprintln!("elapsed: {:.1?}", t0.elapsed());
}
