//! Parameter sensitivity analysis.
//!
//! The paper concedes that "it is unclear how sensitive this result is to
//! parameter variations. Thus, more investigation is needed." This module
//! supplies the instrument: scale one payoff dimension of a game (rewards,
//! penalties, attack costs, or the attack probabilities `p_e`) across a
//! grid, re-solve, and report the loss curve. The `exp` harness and the
//! `robust_audit` example use it to show how the policy's value and the
//! deterrence frontier move with the (admittedly ad hoc) payoff settings.

use crate::detection::{DetectionEstimator, DetectionModel, PalEngine};
use crate::error::GameError;
use crate::ishm::{ExactEvaluator, Ishm, IshmConfig};
use crate::master::MasterSolver;
use crate::model::GameSpec;
use crate::ordering::AuditOrder;
use crate::payoff::PayoffMatrix;
use serde::{Deserialize, Serialize};

/// Which parameter family a sweep scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parameter {
    /// Attacker rewards `R`.
    Reward,
    /// Capture penalties `M`.
    Penalty,
    /// Attack costs `K`.
    AttackCost,
    /// Attack probabilities `p_e` (clamped to `[0, 1]`).
    AttackProb,
    /// Audit budget `B`.
    Budget,
}

/// One point of a sensitivity curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// Multiplier applied to the base value.
    pub scale: f64,
    /// Solved auditor loss at this scale.
    pub loss: f64,
    /// Fraction of attackers with best-response utility ≤ 0 (deterred or
    /// indifferent).
    pub deterred_fraction: f64,
}

/// Scale one parameter family of a spec by `factor`.
pub fn scale_spec(spec: &GameSpec, parameter: Parameter, factor: f64) -> GameSpec {
    assert!(factor.is_finite() && factor >= 0.0, "scale must be ≥ 0");
    let mut out = spec.clone();
    match parameter {
        Parameter::Budget => out.budget *= factor,
        Parameter::AttackProb => {
            for att in &mut out.attackers {
                att.attack_prob = (att.attack_prob * factor).clamp(0.0, 1.0);
            }
        }
        _ => {
            for att in &mut out.attackers {
                for act in &mut att.actions {
                    match parameter {
                        Parameter::Reward => act.reward *= factor,
                        Parameter::Penalty => act.penalty *= factor,
                        Parameter::AttackCost => act.attack_cost *= factor,
                        _ => unreachable!("covered above"),
                    }
                }
            }
        }
    }
    out
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct SensitivityConfig {
    /// Multipliers to apply.
    pub scales: Vec<f64>,
    /// ISHM step size.
    pub epsilon: f64,
    /// Monte-Carlo samples.
    pub n_samples: usize,
    /// Seed.
    pub seed: u64,
    /// Worker threads for the detection engine backing each re-solve
    /// (results are thread-count invariant).
    pub threads: usize,
}

impl Default for SensitivityConfig {
    fn default() -> Self {
        Self {
            scales: vec![0.5, 0.75, 1.0, 1.5, 2.0],
            epsilon: 0.25,
            n_samples: 300,
            seed: 0,
            threads: 1,
        }
    }
}

/// Run a sweep over one parameter family (exact inner LP; intended for
/// small `|T|` games such as Syn A).
pub fn sweep(
    spec: &GameSpec,
    parameter: Parameter,
    config: &SensitivityConfig,
) -> Result<Vec<SensitivityPoint>, GameError> {
    let mut out = Vec::with_capacity(config.scales.len());
    for &scale in &config.scales {
        let scaled = scale_spec(spec, parameter, scale);
        let bank = scaled.sample_bank(config.n_samples, config.seed);
        let est = DetectionEstimator::new(&scaled, &bank, DetectionModel::PaperApprox);
        let mut eval = ExactEvaluator::with_threads(&scaled, est, config.threads);
        let outcome = Ishm::new(IshmConfig {
            epsilon: config.epsilon,
            ..Default::default()
        })
        .solve(&scaled, &mut eval)?;
        let deterred = outcome
            .master
            .u_attackers
            .iter()
            .filter(|&&u| u <= 1e-9)
            .count();
        out.push(SensitivityPoint {
            scale,
            loss: outcome.value,
            deterred_fraction: deterred as f64 / scaled.n_attackers().max(1) as f64,
        });
    }
    Ok(out)
}

/// One point of a single-threshold loss curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThresholdCurvePoint {
    /// Threshold value substituted at the swept coordinate.
    pub threshold: f64,
    /// Auditor's loss (exact master LP over all orders) at that value.
    pub loss: f64,
}

/// Loss curve along **one threshold coordinate**, all other thresholds
/// held at `base_thresholds`: for every value in `values`, solve the exact
/// master LP over all orders with `thresholds[coord] = value`.
///
/// This is the paper's missing local-sensitivity instrument ("how flat is
/// the optimum in each coordinate?") and the direct consumer of
/// [`PalEngine::pal_sweep`]: each order's whole candidate set is answered
/// by one sorted single-coordinate sweep — the prefix before the swept
/// coordinate is paid once per order, the sweep siblings share one
/// budget-cap pass, and the saturated tail of `values` collapses into a
/// single evaluation — so the matrix builds below are pure cache hits.
/// Intended for small `|T|` games (all `|T|!` orders are materialized).
pub fn threshold_curve(
    spec: &GameSpec,
    est: &DetectionEstimator<'_>,
    base_thresholds: &[f64],
    coord: usize,
    values: &[f64],
    threads: usize,
) -> Result<Vec<ThresholdCurvePoint>, GameError> {
    spec.validate()?;
    assert!(coord < spec.n_types(), "swept coordinate out of range");
    assert_eq!(base_thresholds.len(), spec.n_types());
    let engine = PalEngine::new(*est, threads);
    let orders = AuditOrder::enumerate_all(spec.n_types());
    for order in &orders {
        engine.pal_sweep(order.types(), base_thresholds, coord, values);
    }
    let mut out = Vec::with_capacity(values.len());
    for &value in values {
        let mut thresholds = base_thresholds.to_vec();
        thresholds[coord] = value;
        let m = PayoffMatrix::build_with_engine(spec, &engine, orders.clone(), &thresholds);
        let sol = MasterSolver::solve(spec, &m)?;
        out.push(ThresholdCurvePoint {
            threshold: value,
            loss: sol.value,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::syn_a_with_budget;

    #[test]
    fn scaling_transforms_the_right_fields() {
        let s = syn_a_with_budget(6.0);
        let r = scale_spec(&s, Parameter::Reward, 2.0);
        assert_eq!(
            r.attackers[0].actions[1].reward,
            s.attackers[0].actions[1].reward * 2.0
        );
        assert_eq!(
            r.attackers[0].actions[1].penalty,
            s.attackers[0].actions[1].penalty
        );

        let p = scale_spec(&s, Parameter::Penalty, 0.5);
        assert_eq!(p.attackers[0].actions[1].penalty, 2.0);

        let b = scale_spec(&s, Parameter::Budget, 3.0);
        assert_eq!(b.budget, 18.0);

        let q = scale_spec(&s, Parameter::AttackProb, 5.0);
        assert_eq!(q.attackers[0].attack_prob, 1.0); // clamped
    }

    #[test]
    fn reward_scaling_raises_loss() {
        let s = syn_a_with_budget(6.0);
        let cfg = SensitivityConfig {
            scales: vec![0.5, 1.0, 2.0],
            epsilon: 0.5,
            n_samples: 100,
            seed: 2,
            threads: 1,
        };
        let curve = sweep(&s, Parameter::Reward, &cfg).unwrap();
        assert!(
            curve[0].loss < curve[2].loss,
            "richer attacks must hurt more"
        );
    }

    #[test]
    fn penalty_scaling_lowers_loss() {
        let s = syn_a_with_budget(6.0);
        let cfg = SensitivityConfig {
            scales: vec![0.0, 2.0],
            epsilon: 0.5,
            n_samples: 100,
            seed: 2,
            threads: 1,
        };
        let curve = sweep(&s, Parameter::Penalty, &cfg).unwrap();
        assert!(curve[1].loss < curve[0].loss, "harsher penalties must help");
    }

    #[test]
    #[should_panic]
    fn negative_scale_rejected() {
        scale_spec(&syn_a_with_budget(2.0), Parameter::Reward, -1.0);
    }

    #[test]
    fn threshold_curve_matches_per_value_solves() {
        let s = syn_a_with_budget(6.0);
        let bank = s.sample_bank(120, 3);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let base = vec![3.0, 3.0, 3.0, 3.0];
        let values = [0.0, 1.0, 2.0, 4.0, 50.0];
        let curve = threshold_curve(&s, &est, &base, 1, &values, 2).unwrap();
        assert_eq!(curve.len(), values.len());
        // Reference: one exact solve per value, no sweep kernel.
        let orders = AuditOrder::enumerate_all(4);
        for (point, &v) in curve.iter().zip(&values) {
            let mut th = base.clone();
            th[1] = v;
            let m = crate::payoff::PayoffMatrix::build(&s, &est, orders.clone(), &th);
            let want = MasterSolver::solve(&s, &m).unwrap().value;
            assert_eq!(point.loss.to_bits(), want.to_bits(), "value {v}");
        }
    }
}
