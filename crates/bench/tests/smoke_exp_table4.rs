//! End-to-end smoke test: the `exp_table4` experiment binary (ISHM grid,
//! exact inner LP) must run on a tiny configuration — one budget, one step
//! size, few Monte-Carlo samples, 2 engine threads — and emit a well-formed
//! grid.

use std::process::Command;

#[test]
fn exp_table4_runs_end_to_end_on_tiny_config() {
    let exe = env!("CARGO_BIN_EXE_exp_table4");
    let out = Command::new(exe)
        .args(["2", "0.2,0.5", "40", "2"]) // B={2}, eps={0.2,0.5}, 40 samples, 2 threads
        .output()
        .expect("exp_table4 spawns");
    assert!(
        out.status.success(),
        "exp_table4 exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("eps=0.2") && stdout.contains("eps=0.5"),
        "missing epsilon columns in output:\n{stdout}"
    );
    // One data row for the single requested budget, carrying a threshold
    // vector rendered as [..].
    let row = stdout
        .lines()
        .find(|l| l.starts_with("| 2 "))
        .expect("data row for budget 2");
    assert!(row.contains('['), "row should carry thresholds: {row}");
    // The tiny sample count must be echoed on stderr, proving the knob is
    // wired through.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("40 samples") && stderr.contains("2 engine thread"),
        "stderr should echo samples/threads:\n{stderr}"
    );
}

#[test]
fn exp_table4_cache_stats_flag_reports_engine_counters() {
    let exe = env!("CARGO_BIN_EXE_exp_table4");
    let out = Command::new(exe)
        .args(["2", "0.5", "40", "1", "--cache-stats"])
        .output()
        .expect("exp_table4 spawns");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("engine cache: hits=") && stdout.contains("evictions="),
        "missing cache counters:\n{stdout}"
    );
    // The trie line must prove column passes were shared relative to the
    // scalar path (the CI perf smoke greps the same invariant).
    let trie = stdout
        .lines()
        .find(|l| l.starts_with("engine trie:"))
        .expect("trie counter line");
    let saved: u64 = trie
        .split("columns_saved=")
        .nth(1)
        .and_then(|s| s.trim().parse().ok())
        .expect("columns_saved value");
    assert!(saved > 0, "trie sharing not engaged: {trie}");
    // Without the flag the counters must not appear.
    let plain = Command::new(exe)
        .args(["2", "0.5", "40", "1"])
        .output()
        .expect("exp_table4 spawns");
    assert!(!String::from_utf8_lossy(&plain.stdout).contains("engine cache:"));
}
