//! End-to-end service-loop tests on the core registry scenarios: drift
//! dynamics and warm-vs-cold parity on the drifting `syn-seasonal`
//! workload, a stationary negative control, and determinism of the
//! telemetry fingerprint across reruns and thread counts.

use audit_game::scenario::registry;
use audit_game::solver::{InnerKind, SolverConfig};
use audit_runtime::{AuditService, DriftConfig, RuntimeConfig};

fn seasonal_config() -> RuntimeConfig {
    RuntimeConfig {
        epochs: 24,
        periods_per_epoch: 5,
        seed: 0,
        solver: SolverConfig {
            inner: InnerKind::Cggs,
            n_samples: 120,
            epsilon: 0.25,
            ..Default::default()
        },
        drift: DriftConfig::default(),
        warm_start: true,
        compare_cold: false,
    }
}

fn run(key: &str, cfg: RuntimeConfig) -> audit_runtime::RuntimeReport {
    let reg = registry();
    let sc = reg.get(key).unwrap().clone();
    AuditService::new(sc, cfg).run().unwrap()
}

#[test]
fn seasonal_drift_triggers_warm_resolves_matching_cold_objectives() {
    let mut cfg = seasonal_config();
    cfg.compare_cold = true;
    let report = run("syn-seasonal", cfg);

    assert_eq!(report.epochs.len(), 24);
    assert!(
        report.drift_epochs() >= 1,
        "seasonal workload never drifted"
    );
    assert!(report.resolves() >= 1, "drift never triggered a re-solve");
    for e in &report.epochs {
        assert_eq!(e.alerts_seen.len(), 3);
        assert!(e
            .alerts_audited
            .iter()
            .zip(&e.alerts_seen)
            .all(|(a, s)| a <= s));
        assert!(e.objective.is_finite());
        if e.resolved {
            let cold = e
                .cold_objective
                .expect("compare_cold records the shadow solve");
            // The warm start is value-equivalent to the cold start, so the
            // committed warm re-solve can only match or beat the cold one.
            assert!(
                e.objective <= cold + 1e-9,
                "epoch {}: warm {} worse than cold {}",
                e.epoch,
                e.objective,
                cold
            );
            assert!(e.solve_explored.is_some() && e.cold_explored.is_some());
        } else {
            assert!(e.cold_objective.is_none());
        }
    }
}

#[test]
fn stationary_workload_stays_on_the_incumbent_policy() {
    let mut cfg = seasonal_config();
    cfg.epochs = 10;
    // Generous gate: the Gaussian Syn A stream matches its own model, so
    // the window KS stays in pure sampling-noise range.
    cfg.drift = DriftConfig {
        window_periods: 20,
        ks_threshold: 0.4,
        ..Default::default()
    };
    let report = run("syn-a", cfg);
    assert_eq!(report.resolves(), 0, "stationary workload re-solved");
    let thr0 = &report.epochs[0].thresholds;
    assert!(report.epochs.iter().all(|e| &e.thresholds == thr0));
}

#[test]
fn reruns_and_thread_counts_share_one_fingerprint() {
    let base = run("syn-seasonal", seasonal_config()).fingerprint();
    let again = run("syn-seasonal", seasonal_config()).fingerprint();
    assert_eq!(base, again, "rerun changed the telemetry");
    for threads in [2usize, 4] {
        let mut cfg = seasonal_config();
        cfg.solver.threads = threads;
        let multi = run("syn-seasonal", cfg).fingerprint();
        assert_eq!(base, multi, "thread count {threads} changed the telemetry");
    }
}

#[test]
fn staleness_bound_forces_refresh_without_drift() {
    let mut cfg = seasonal_config();
    cfg.epochs = 8;
    // Gate closed (impossible KS threshold), staleness open.
    cfg.drift = DriftConfig {
        ks_threshold: 2.0,
        max_stale_epochs: Some(3),
        ..Default::default()
    };
    let report = run("syn-seasonal", cfg);
    assert!(report.drift_epochs() == 0);
    assert!(report.resolves() >= 2, "staleness refresh never fired");
    for e in &report.epochs {
        assert!(e.epochs_since_resolve <= 3);
    }
}
