//! Experiment harness for the alert-audit reproduction.
//!
//! One binary per table/figure of the paper (see `src/bin/`), built on the
//! shared runners in this library:
//!
//! * [`report`] — plain-text/markdown table rendering;
//! * [`syn_experiments`] — synthetic-grid sweeps (Tables III–VII, Section
//!   IV.C) over any base scenario;
//! * [`real_experiments`] — budget sweeps with baselines (Figures 1–2);
//! * [`scenarios`] — scenario resolution and the registry-wide sweep;
//! * [`cli`] — the binaries' shared command-line dialect (flag and
//!   positional parsing, `--scenario` handling, `--cache-stats`
//!   rendering);
//! * [`defaults`] — the budget grids and seeds shared across binaries.
//!
//! Every runner takes explicit seeds and sample counts so results are
//! reproducible; the binaries print the same rows/series the paper
//! reports, and each accepts `--scenario <key>` to re-run its experiment
//! on any scenario from `alert_audit::scenario::registry()`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cli;
pub mod defaults;
pub mod real_experiments;
pub mod report;
pub mod scenarios;
pub mod syn_experiments;
