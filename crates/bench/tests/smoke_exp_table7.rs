//! End-to-end smoke test: the `exp_table7` experiment binary (ISHM
//! exploration counters) must run on a tiny configuration, including on a
//! non-default scenario selected via `--scenario`.

use std::process::Command;

#[test]
fn exp_table7_runs_end_to_end_on_tiny_config() {
    let exe = env!("CARGO_BIN_EXE_exp_table7");
    let out = Command::new(exe)
        .args(["2,4", "0.3", "40", "1"])
        .output()
        .expect("exp_table7 spawns");
    assert!(
        out.status.success(),
        "exp_table7 exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Paper layout: one row per epsilon, one column per budget.
    let row = stdout
        .lines()
        .find(|l| l.starts_with("| 0.3 "))
        .expect("row for eps 0.3");
    let explored: Vec<usize> = row
        .split('|')
        .filter_map(|c| c.trim().parse().ok())
        .collect();
    assert_eq!(explored.len(), 2, "one counter per budget: {row}");
    assert!(explored.iter().all(|&e| e > 0), "counters must be positive");
}

#[test]
fn exp_table7_runs_on_a_registry_scenario() {
    let exe = env!("CARGO_BIN_EXE_exp_table7");
    // The heavy-tail scenario has a 4-type lattice like Syn A but Zipf
    // counts; the counters must still flow end to end.
    let out = Command::new(exe)
        .args(["3", "0.5", "30", "1", "--scenario", "syn-heavy-tail"])
        .output()
        .expect("exp_table7 spawns");
    assert!(
        out.status.success(),
        "exp_table7 exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("scenario syn-heavy-tail"),
        "stderr should echo the resolved scenario:\n{stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.lines().any(|l| l.starts_with("| 0.5 ")),
        "missing eps row:\n{stdout}"
    );
}
