//! Day-partitioned audit logs: ingestion, repeated-access filtering, alert
//! counting, and a compact binary serialization.
//!
//! The Rea A pipeline (Section V.A) starts from 28 days of raw access
//! events, removes repeated accesses ("an access committed by the same
//! employee to the same patient's EMR on the same day"), labels the rest
//! with alert types, and derives per-day alert counts per type — the
//! empirical inputs to `F_t`.

use crate::event::AccessEvent;
use crate::rules::RuleEngine;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::HashSet;

/// An append-only, day-partitioned access log.
#[derive(Debug, Clone, Default)]
pub struct AuditLog {
    events: Vec<AccessEvent>,
    n_days: u32,
}

impl AuditLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event.
    pub fn push(&mut self, ev: AccessEvent) {
        self.n_days = self.n_days.max(ev.day + 1);
        self.events.push(ev);
    }

    /// Bulk append.
    pub fn extend(&mut self, evs: impl IntoIterator<Item = AccessEvent>) {
        for ev in evs {
            self.push(ev);
        }
    }

    /// All events, in insertion order.
    pub fn events(&self) -> &[AccessEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of days spanned (1 + max day index).
    pub fn n_days(&self) -> u32 {
        self.n_days
    }

    /// Remove repeated accesses: keep the first event per
    /// `(day, entity, record)` key, preserving order. Returns the number of
    /// repeats dropped (the paper reports 79.5% on Rea A).
    pub fn dedup_daily(&mut self) -> usize {
        let before = self.events.len();
        let mut seen = HashSet::with_capacity(before);
        self.events.retain(|ev| seen.insert(ev.daily_key()));
        before - self.events.len()
    }

    /// Label every event with the engine and count alerts per day per type:
    /// `counts[day][type]`. Unregistered combinations are counted under the
    /// fallback handler (`on_gap`), letting callers either panic, skip, or
    /// log vocabulary gaps.
    pub fn daily_alert_counts(
        &self,
        engine: &RuleEngine,
        mut on_gap: impl FnMut(&AccessEvent, &[usize]),
    ) -> Vec<Vec<u64>> {
        let mut counts = vec![vec![0u64; engine.n_types()]; self.n_days as usize];
        for ev in &self.events {
            match engine.label(ev) {
                Ok(Some(t)) => counts[ev.day as usize][t] += 1,
                Ok(None) => {}
                Err(firing) => on_gap(ev, &firing),
            }
        }
        counts
    }

    /// Per-type observation series across days (transpose of
    /// [`AuditLog::daily_alert_counts`]): `obs[type][day]`.
    pub fn per_type_series(
        &self,
        engine: &RuleEngine,
        on_gap: impl FnMut(&AccessEvent, &[usize]),
    ) -> Vec<Vec<u64>> {
        let daily = self.daily_alert_counts(engine, on_gap);
        let n_types = engine.n_types();
        let mut out = vec![Vec::with_capacity(daily.len()); n_types];
        for day in &daily {
            for (t, &c) in day.iter().enumerate() {
                out[t].push(c);
            }
        }
        out
    }

    /// Serialize to a compact binary frame (events without attributes —
    /// the wire format carries the structural triple, which is what
    /// longitudinal storage needs; attributes are re-derivable from the
    /// entity/record registries of the simulator).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.events.len() * 12);
        buf.put_u64(self.events.len() as u64);
        buf.put_u32(self.n_days);
        for ev in &self.events {
            buf.put_u32(ev.entity.0);
            buf.put_u32(ev.record.0);
            buf.put_u32(ev.day);
        }
        buf.freeze()
    }

    /// Deserialize a frame produced by [`AuditLog::to_bytes`].
    pub fn from_bytes(mut bytes: Bytes) -> Result<Self, String> {
        if bytes.remaining() < 12 {
            return Err("truncated header".into());
        }
        let n = bytes.get_u64() as usize;
        let n_days = bytes.get_u32();
        if bytes.remaining() < n * 12 {
            return Err(format!(
                "truncated body: expected {} bytes, have {}",
                n * 12,
                bytes.remaining()
            ));
        }
        let mut log = AuditLog {
            events: Vec::with_capacity(n),
            n_days,
        };
        for _ in 0..n {
            let entity = crate::event::EntityId(bytes.get_u32());
            let record = crate::event::RecordId(bytes.get_u32());
            let day = bytes.get_u32();
            log.events.push(AccessEvent::new(entity, record, day));
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AttrValue, EntityId, RecordId};
    use crate::rules::{CombinationPolicy, Rule};

    fn engine() -> RuleEngine {
        RuleEngine::new(
            vec![Rule::flag("flagged", "suspicious")],
            CombinationPolicy::FirstMatch,
        )
    }

    fn suspicious(e: u32, r: u32, day: u32) -> AccessEvent {
        AccessEvent::new(EntityId(e), RecordId(r), day)
            .with_attr("suspicious", AttrValue::Bool(true))
    }

    #[test]
    fn dedup_removes_same_day_repeats_only() {
        let mut log = AuditLog::new();
        log.push(suspicious(1, 1, 0));
        log.push(suspicious(1, 1, 0)); // repeat
        log.push(suspicious(1, 1, 1)); // next day: kept
        log.push(suspicious(2, 1, 0)); // different entity: kept
        let dropped = log.dedup_daily();
        assert_eq!(dropped, 1);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn daily_counts_partition_by_day() {
        let mut log = AuditLog::new();
        log.push(suspicious(1, 1, 0));
        log.push(suspicious(1, 2, 0));
        log.push(suspicious(1, 3, 2));
        log.push(AccessEvent::new(EntityId(9), RecordId(9), 1)); // benign
        let counts = log.daily_alert_counts(&engine(), |_, _| panic!("no gaps"));
        assert_eq!(counts.len(), 3);
        assert_eq!(counts[0][0], 2);
        assert_eq!(counts[1][0], 0);
        assert_eq!(counts[2][0], 1);
    }

    #[test]
    fn per_type_series_transposes() {
        let mut log = AuditLog::new();
        log.push(suspicious(1, 1, 0));
        log.push(suspicious(1, 2, 1));
        log.push(suspicious(1, 3, 1));
        let series = log.per_type_series(&engine(), |_, _| {});
        assert_eq!(series, vec![vec![1, 2]]);
    }

    #[test]
    fn gap_handler_sees_unregistered_combinations() {
        let mut eng = RuleEngine::new(
            vec![Rule::flag("a", "fa"), Rule::flag("b", "fb")],
            CombinationPolicy::Registered,
        );
        eng.register_combination("only-a", vec![0]);
        let mut log = AuditLog::new();
        log.push(
            AccessEvent::new(EntityId(1), RecordId(1), 0)
                .with_attr("fa", AttrValue::Bool(true))
                .with_attr("fb", AttrValue::Bool(true)),
        );
        let mut gaps = 0;
        let counts = log.daily_alert_counts(&eng, |_, firing| {
            assert_eq!(firing, &[0, 1]);
            gaps += 1;
        });
        assert_eq!(gaps, 1);
        assert_eq!(counts[0][0], 0);
    }

    #[test]
    fn binary_roundtrip() {
        let mut log = AuditLog::new();
        for d in 0..5 {
            for e in 0..3 {
                log.push(AccessEvent::new(EntityId(e), RecordId(e * 7), d));
            }
        }
        let bytes = log.to_bytes();
        let back = AuditLog::from_bytes(bytes).unwrap();
        assert_eq!(back.len(), log.len());
        assert_eq!(back.n_days(), log.n_days());
        for (a, b) in back.events().iter().zip(log.events()) {
            assert_eq!(a.daily_key(), b.daily_key());
        }
    }

    #[test]
    fn binary_rejects_truncation() {
        let mut log = AuditLog::new();
        log.push(suspicious(1, 1, 0));
        let bytes = log.to_bytes();
        let truncated = bytes.slice(0..bytes.len() - 4);
        assert!(AuditLog::from_bytes(truncated).is_err());
        assert!(AuditLog::from_bytes(Bytes::from_static(b"xy")).is_err());
    }

    #[test]
    fn empty_log_is_well_behaved() {
        let log = AuditLog::new();
        assert!(log.is_empty());
        assert_eq!(log.n_days(), 0);
        let counts = log.daily_alert_counts(&engine(), |_, _| {});
        assert!(counts.is_empty());
    }
}
