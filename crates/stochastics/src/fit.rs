//! Fitting count models from observed per-period alert counts.
//!
//! The paper obtains `F_t` "from historical alert logs" (Section II-A). The
//! TDMT substrate produces daily alert counts; these helpers turn them into
//! [`CountDistribution`] models usable by the game solvers.

use crate::discrete::{DiscretizedGaussian, Empirical};

/// Sample mean of observed counts.
pub fn sample_mean(obs: &[u64]) -> f64 {
    assert!(!obs.is_empty(), "need at least one observation");
    obs.iter().sum::<u64>() as f64 / obs.len() as f64
}

/// Unbiased sample standard deviation of observed counts.
///
/// Returns a small positive floor when the sample is degenerate (fewer than
/// two observations or zero variance) so that downstream Gaussian fits stay
/// well-defined.
pub fn sample_std(obs: &[u64]) -> f64 {
    const FLOOR: f64 = 1e-6;
    if obs.len() < 2 {
        return FLOOR;
    }
    let mean = sample_mean(obs);
    let ss: f64 = obs.iter().map(|&o| (o as f64 - mean).powi(2)).sum();
    (ss / (obs.len() - 1) as f64).sqrt().max(FLOOR)
}

/// Moment-fit a [`DiscretizedGaussian`] from observations, truncating at the
/// requested coverage (the paper uses 99.5%).
pub fn fit_discretized_gaussian(obs: &[u64], coverage: f64) -> DiscretizedGaussian {
    let mean = sample_mean(obs);
    let std = sample_std(obs).max(0.5); // keep at least one count of spread
    DiscretizedGaussian::with_coverage(mean, std, coverage)
}

/// Build the empirical distribution of observations directly.
pub fn fit_empirical(obs: &[u64]) -> Empirical {
    Empirical::from_observations(obs)
}

/// Moment-fit a [`DiscretizedGaussian`] directly from streamed moments —
/// the online counterpart of [`fit_discretized_gaussian`] used by the
/// auditing runtime, which tracks [`crate::stats::StreamingMoments`]
/// per alert type instead of materializing observation vectors.
pub fn fit_gaussian_from_moments(
    moments: &crate::stats::StreamingMoments,
    coverage: f64,
) -> DiscretizedGaussian {
    assert!(moments.count() > 0, "need at least one observation");
    let std = moments.sample_std().max(0.5); // keep at least one count of spread
    DiscretizedGaussian::with_coverage(moments.mean(), std, coverage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrete::CountDistribution;
    use crate::rng::seeded_rng;

    #[test]
    fn moments_of_simple_sample() {
        let obs = [2u64, 4, 4, 4, 5, 5, 7, 9];
        assert!((sample_mean(&obs) - 5.0).abs() < 1e-12);
        // Unbiased variance of this sample is 32/7.
        assert!((sample_std(&obs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn degenerate_samples_get_floor() {
        assert!(sample_std(&[5]) > 0.0);
        assert!(sample_std(&[5, 5, 5, 5]) > 0.0);
    }

    #[test]
    fn gaussian_fit_recovers_parameters() {
        let truth = DiscretizedGaussian::with_halfwidth(20.0, 4.0, 12);
        let mut rng = seeded_rng(21);
        let obs: Vec<u64> = (0..5000).map(|_| truth.sample(&mut rng)).collect();
        let fit = fit_discretized_gaussian(&obs, 0.995);
        assert!(
            (fit.gaussian_mean() - 20.0).abs() < 0.3,
            "mean {}",
            fit.gaussian_mean()
        );
        assert!(
            (fit.gaussian_std() - 4.0).abs() < 0.4,
            "std {}",
            fit.gaussian_std()
        );
    }

    #[test]
    fn moment_fit_agrees_with_batch_fit() {
        let obs = [3u64, 5, 5, 6, 7, 7, 8, 11];
        let mut acc = crate::stats::StreamingMoments::new();
        for &o in &obs {
            acc.push(o);
        }
        let batch = fit_discretized_gaussian(&obs, 0.995);
        let streamed = fit_gaussian_from_moments(&acc, 0.995);
        assert!((batch.gaussian_mean() - streamed.gaussian_mean()).abs() < 1e-12);
        assert!((batch.gaussian_std() - streamed.gaussian_std()).abs() < 1e-12);
    }

    #[test]
    fn empirical_fit_matches_frequencies() {
        let obs = [1u64, 1, 2, 3, 3, 3];
        let fit = fit_empirical(&obs);
        assert!((fit.pmf(3) - 0.5).abs() < 1e-12);
        assert!((fit.pmf(1) - 1.0 / 3.0).abs() < 1e-12);
    }
}
