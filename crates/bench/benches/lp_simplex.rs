//! P1 — LP solver scaling: random covering LPs and game-shaped master LPs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lp_solver::{Problem, Relation, Sense};
use rand::Rng;
use stochastics::seeded_rng;

/// Random covering LP: min cᵀx s.t. Ax ≥ b, x ≥ 0 (feasible & bounded).
fn covering_lp(n: usize, m: usize, seed: u64) -> Problem {
    let mut rng = seeded_rng(seed);
    let mut p = Problem::new(Sense::Minimize);
    let xs: Vec<_> = (0..n)
        .map(|j| p.add_var(format!("x{j}"), rng.gen_range(0.1..5.0), 0.0, f64::INFINITY))
        .collect();
    for i in 0..m {
        let terms: Vec<_> = xs.iter().map(|&x| (x, rng.gen_range(0.1..3.0))).collect();
        p.add_constraint(
            format!("r{i}"),
            terms,
            Relation::Ge,
            rng.gen_range(1.0..20.0),
        );
    }
    p
}

/// Game-shaped master LP: max μ with a mass row per attacker and a value
/// row per order (the shape CGGS solves thousands of times).
fn game_lp(n_attackers: usize, n_actions_per: usize, n_orders: usize, seed: u64) -> Problem {
    let mut rng = seeded_rng(seed);
    let mut p = Problem::new(Sense::Maximize);
    let mu = p.add_free_var("mu", 1.0);
    let ys: Vec<Vec<_>> = (0..n_attackers)
        .map(|e| {
            (0..n_actions_per)
                .map(|a| p.add_var(format!("y{e}_{a}"), 0.0, 0.0, f64::INFINITY))
                .collect()
        })
        .collect();
    for (e, row) in ys.iter().enumerate() {
        p.add_constraint(
            format!("mass{e}"),
            row.iter().map(|&y| (y, 1.0)).collect(),
            Relation::Eq,
            1.0,
        );
    }
    for o in 0..n_orders {
        let mut terms = vec![(mu, 1.0)];
        for row in &ys {
            for &y in row {
                terms.push((y, -rng.gen_range(-5.0..5.0)));
            }
        }
        p.add_constraint(format!("order{o}"), terms, Relation::Le, 0.0);
    }
    p
}

fn bench_covering(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_covering");
    group.sample_size(20);
    for &(n, m) in &[(10usize, 8usize), (30, 20), (80, 50)] {
        let p = covering_lp(n, m, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{m}")),
            &p,
            |b, p| b.iter(|| p.solve().expect("solvable")),
        );
    }
    group.finish();
}

fn bench_game_shape(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_game_master");
    group.sample_size(20);
    for &(e, a, o) in &[(5usize, 8usize, 24usize), (50, 8, 24), (50, 8, 64)] {
        let p = game_lp(e, a, o, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("E{e}_A{a}_O{o}")),
            &p,
            |b, p| b.iter(|| p.solve().expect("solvable")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_covering, bench_game_shape);
criterion_main!(benches);
