//! Operational execution of a solved audit policy.
//!
//! The solvers produce a *policy* — thresholds plus a mixed strategy over
//! orders. This module turns it into day-to-day behaviour: draw an order,
//! walk the realized alert queues in that order, and audit alerts within
//! the per-type thresholds and the remaining global budget. This is the
//! piece a deploying organization actually runs every audit period.

use crate::detection::{PalEngine, PalQuery};
use crate::model::GameSpec;
use crate::ordering::AuditOrder;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A deployable audit policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditPolicy {
    /// Per-type budget thresholds `b_t` (budget units).
    pub thresholds: Vec<f64>,
    /// Support of the mixed strategy.
    pub orders: Vec<AuditOrder>,
    /// Probability of each order (sums to 1).
    pub probs: Vec<f64>,
}

impl AuditPolicy {
    /// Construct, validating simplex structure.
    pub fn new(thresholds: Vec<f64>, orders: Vec<AuditOrder>, probs: Vec<f64>) -> Self {
        assert_eq!(orders.len(), probs.len(), "orders/probs length mismatch");
        assert!(!orders.is_empty(), "policy needs at least one order");
        let total: f64 = probs.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-6 && probs.iter().all(|&p| p >= -1e-9),
            "probs must form a distribution (sum {total})"
        );
        Self {
            thresholds,
            orders,
            probs,
        }
    }

    /// A deterministic single-order policy.
    pub fn pure(thresholds: Vec<f64>, order: AuditOrder) -> Self {
        Self::new(thresholds, vec![order], vec![1.0])
    }

    /// Sample an order according to the mixed strategy.
    pub fn sample_order<R: Rng + ?Sized>(&self, rng: &mut R) -> &AuditOrder {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (o, &p) in self.orders.iter().zip(&self.probs) {
            acc += p;
            if u <= acc {
                return o;
            }
        }
        self.orders.last().expect("non-empty by construction")
    }

    /// Number of alert types the policy covers.
    pub fn n_types(&self) -> usize {
        self.thresholds.len()
    }

    /// Expected audit capacity per type: `⌊b_t / C_t⌋` alert slots.
    pub fn capacity(&self, spec: &GameSpec) -> Vec<u64> {
        self.thresholds
            .iter()
            .zip(spec.audit_costs())
            .map(|(&b, c)| (b / c).floor().max(0.0) as u64)
            .collect()
    }

    /// Predicted per-type detection probabilities of each support order
    /// under this policy's thresholds, evaluated in one engine batch
    /// (aligned with `self.orders`).
    pub fn predicted_pal(&self, engine: &PalEngine<'_>) -> Vec<Vec<f64>> {
        let queries: Vec<PalQuery> = self
            .orders
            .iter()
            .map(|o| PalQuery::full(o, &self.thresholds))
            .collect();
        engine.pal_batch(&queries)
    }

    /// Mixture-weighted detection probability per type: what a type-`t`
    /// attack alert faces in expectation over the order draw. The
    /// operational headline number a deploying organization reads off a
    /// solved policy.
    pub fn expected_pal(&self, engine: &PalEngine<'_>) -> Vec<f64> {
        let pals = self.predicted_pal(engine);
        let mut out = vec![0.0f64; self.n_types()];
        for (pal, &p) in pals.iter().zip(&self.probs) {
            for (o, &v) in out.iter_mut().zip(pal) {
                *o += p * v;
            }
        }
        out
    }
}

/// One realized alert awaiting triage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RealizedAlert {
    /// Alert type index.
    pub alert_type: usize,
    /// Opaque identifier (event id, log offset, …).
    pub id: u64,
}

/// Outcome of running the policy on one period's alert queue.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditRun {
    /// The order that was drawn.
    pub order: AuditOrder,
    /// Ids of audited alerts, grouped by type.
    pub audited: Vec<Vec<u64>>,
    /// Budget actually spent.
    pub spent: f64,
    /// Number of alerts skipped for lack of budget or threshold headroom.
    pub skipped: usize,
}

impl AuditRun {
    /// Total number of audited alerts across all types.
    pub fn n_audited(&self) -> usize {
        self.audited.iter().map(|v| v.len()).sum()
    }

    /// Whether a specific alert was audited.
    pub fn contains(&self, alert: &RealizedAlert) -> bool {
        self.audited
            .get(alert.alert_type)
            .map(|ids| ids.contains(&alert.id))
            .unwrap_or(false)
    }
}

/// Execute the policy on one period of realized alerts.
///
/// Within each type the audited subset is drawn uniformly at random —
/// auditing "the first k" would let an attacker time their access to evade
/// review. Budget consumption follows the operational rule (only audits
/// actually performed consume budget).
pub fn execute_policy<R: Rng + ?Sized>(
    policy: &AuditPolicy,
    spec: &GameSpec,
    alerts: &[RealizedAlert],
    rng: &mut R,
) -> AuditRun {
    let n = policy.n_types();
    assert_eq!(n, spec.n_types(), "policy/spec arity mismatch");
    let order = policy.sample_order(rng).clone();
    let costs = spec.audit_costs();

    // Partition the queue by type.
    let mut queues: Vec<Vec<u64>> = vec![Vec::new(); n];
    for a in alerts {
        assert!(
            a.alert_type < n,
            "alert references unknown type {}",
            a.alert_type
        );
        queues[a.alert_type].push(a.id);
    }

    let mut audited: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut remaining = spec.budget;
    let mut skipped = 0usize;
    for &t in order.types() {
        let cap_threshold = (policy.thresholds[t] / costs[t]).floor().max(0.0) as usize;
        let cap_budget = if remaining > 0.0 {
            (remaining / costs[t]).floor().max(0.0) as usize
        } else {
            0
        };
        let take = cap_threshold.min(cap_budget).min(queues[t].len());
        // Uniform random subset of the queue.
        queues[t].shuffle(rng);
        let mut chosen: Vec<u64> = queues[t][..take].to_vec();
        chosen.sort_unstable();
        remaining -= take as f64 * costs[t];
        skipped += queues[t].len() - take;
        audited[t] = chosen;
    }

    AuditRun {
        order,
        audited,
        spent: spec.budget - remaining,
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AttackAction, Attacker, GameSpecBuilder};
    use std::sync::Arc;
    use stochastics::{seeded_rng, Constant};

    fn spec(budget: f64) -> GameSpec {
        let mut b = GameSpecBuilder::new();
        let t0 = b.alert_type("t0", 1.0, Arc::new(Constant(3)));
        let _t1 = b.alert_type("t1", 2.0, Arc::new(Constant(2)));
        b.attacker(Attacker::new(
            "e",
            1.0,
            vec![AttackAction::deterministic("v", t0, 1.0, 0.1, 1.0)],
        ));
        b.budget(budget);
        b.build().unwrap()
    }

    fn queue() -> Vec<RealizedAlert> {
        vec![
            RealizedAlert {
                alert_type: 0,
                id: 1,
            },
            RealizedAlert {
                alert_type: 0,
                id: 2,
            },
            RealizedAlert {
                alert_type: 0,
                id: 3,
            },
            RealizedAlert {
                alert_type: 1,
                id: 10,
            },
            RealizedAlert {
                alert_type: 1,
                id: 11,
            },
        ]
    }

    #[test]
    fn executes_within_budget_and_thresholds() {
        let s = spec(5.0);
        let policy = AuditPolicy::pure(vec![2.0, 4.0], AuditOrder::identity(2));
        let run = execute_policy(&policy, &s, &queue(), &mut seeded_rng(0));
        // Type 0: threshold 2 → 2 of 3. Type 1: cost 2, threshold 4 → cap 2,
        // budget left 3 → 1 audit.
        assert_eq!(run.audited[0].len(), 2);
        assert_eq!(run.audited[1].len(), 1);
        assert!((run.spent - 4.0).abs() < 1e-12);
        assert_eq!(run.skipped, 2);
        assert_eq!(run.n_audited(), 3);
    }

    #[test]
    fn zero_threshold_audits_nothing_of_that_type() {
        let s = spec(10.0);
        let policy = AuditPolicy::pure(vec![0.0, 10.0], AuditOrder::identity(2));
        let run = execute_policy(&policy, &s, &queue(), &mut seeded_rng(0));
        assert!(run.audited[0].is_empty());
        assert_eq!(run.audited[1].len(), 2);
    }

    #[test]
    fn order_determines_starvation() {
        let s = spec(4.0);
        let policy01 = AuditPolicy::pure(vec![10.0, 10.0], AuditOrder::identity(2));
        let run01 = execute_policy(&policy01, &s, &queue(), &mut seeded_rng(0));
        // Type 0 first: 3 audits (cost 3), 1 left → 0 type-1 audits.
        assert_eq!(run01.audited[0].len(), 3);
        assert_eq!(run01.audited[1].len(), 0);

        let policy10 = AuditPolicy::pure(vec![10.0, 10.0], AuditOrder::new(vec![1, 0]).unwrap());
        let run10 = execute_policy(&policy10, &s, &queue(), &mut seeded_rng(0));
        // Type 1 first: 2 audits (cost 4) → nothing for type 0.
        assert_eq!(run10.audited[1].len(), 2);
        assert_eq!(run10.audited[0].len(), 0);
    }

    #[test]
    fn sampling_follows_mixture() {
        let policy = AuditPolicy::new(
            vec![1.0, 1.0],
            vec![
                AuditOrder::identity(2),
                AuditOrder::new(vec![1, 0]).unwrap(),
            ],
            vec![0.25, 0.75],
        );
        let mut rng = seeded_rng(3);
        let n = 20_000;
        let mut first = 0usize;
        for _ in 0..n {
            if policy.sample_order(&mut rng).types()[0] == 0 {
                first += 1;
            }
        }
        let freq = first as f64 / n as f64;
        assert!((freq - 0.25).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn audited_subset_is_uniformly_random() {
        let s = spec(1.0);
        let policy = AuditPolicy::pure(vec![1.0, 0.0], AuditOrder::identity(2));
        let mut rng = seeded_rng(9);
        let mut picks = [0usize; 4];
        for _ in 0..6000 {
            let run = execute_policy(&policy, &s, &queue(), &mut rng);
            assert_eq!(run.audited[0].len(), 1);
            picks[run.audited[0][0] as usize] += 1;
        }
        // Ids 1..=3 each picked ≈ 1/3 of the time.
        for (id, &count) in picks.iter().enumerate().skip(1) {
            let freq = count as f64 / 6000.0;
            assert!((freq - 1.0 / 3.0).abs() < 0.03, "id {id} freq {freq}");
        }
    }

    #[test]
    #[should_panic]
    fn rejects_malformed_mixture() {
        AuditPolicy::new(
            vec![1.0],
            vec![AuditOrder::identity(1)],
            vec![0.5], // doesn't sum to 1
        );
    }

    #[test]
    fn capacity_accounts_for_costs() {
        let s = spec(10.0);
        let policy = AuditPolicy::pure(vec![3.0, 5.0], AuditOrder::identity(2));
        assert_eq!(policy.capacity(&s), vec![3, 2]);
    }

    #[test]
    fn expected_pal_mixes_per_order_predictions() {
        use crate::detection::{DetectionEstimator, DetectionModel};
        let s = spec(3.0);
        let bank = s.sample_bank(16, 0);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let engine = PalEngine::new(est, 2);
        let policy = AuditPolicy::new(
            vec![3.0, 4.0],
            vec![
                AuditOrder::identity(2),
                AuditOrder::new(vec![1, 0]).unwrap(),
            ],
            vec![0.25, 0.75],
        );
        let per_order = policy.predicted_pal(&engine);
        assert_eq!(per_order[0], est.pal(&policy.orders[0], &policy.thresholds));
        assert_eq!(per_order[1], est.pal(&policy.orders[1], &policy.thresholds));
        let mixed = policy.expected_pal(&engine);
        for t in 0..2 {
            let want = 0.25 * per_order[0][t] + 0.75 * per_order[1][t];
            assert!((mixed[t] - want).abs() < 1e-15);
        }
    }
}
