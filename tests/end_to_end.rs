//! Cross-crate integration: full pipelines from dataset synthesis through
//! game solving to operational execution.

use alert_audit::game::baselines::{greedy_by_benefit_loss, random_orders_loss};
use alert_audit::game::cggs::CggsConfig;
use alert_audit::game::detection::{DetectionEstimator, DetectionModel};
use alert_audit::game::execute::{execute_policy, AuditPolicy, RealizedAlert};
use alert_audit::game::ishm::{CggsEvaluator, ExactEvaluator, Ishm, IshmConfig};
use alert_audit::prelude::*;

#[test]
fn syn_a_pipeline_close_to_paper_table3_row1() {
    // Paper Table III, B=2: optimum 12.2945 with thresholds [1,1,1,1].
    // ISHM at ε = 0.1 matches the brute-force optimum on this instance,
    // and our Monte-Carlo estimate must land within sampling error.
    let spec = alert_audit::game::datasets::syn_a_with_budget(2.0);
    let sol = OapSolver::new(SolverConfig {
        epsilon: 0.1,
        n_samples: 800,
        seed: 20180422,
        ..Default::default()
    })
    .solve(&spec)
    .unwrap();
    assert!(
        (sol.loss - 12.29).abs() < 0.8,
        "Syn A B=2 loss {} far from paper's 12.2945",
        sol.loss
    );
}

#[test]
fn syn_a_loss_decreases_monotonically_in_budget() {
    let mut prev = f64::INFINITY;
    for budget in [2.0, 6.0, 12.0, 20.0] {
        let spec = alert_audit::game::datasets::syn_a_with_budget(budget);
        let sol = OapSolver::new(SolverConfig {
            epsilon: 0.2,
            n_samples: 300,
            seed: 1,
            ..Default::default()
        })
        .solve(&spec)
        .unwrap();
        assert!(
            sol.loss <= prev + 1e-6,
            "loss increased with budget at B={budget}: {} > {prev}",
            sol.loss
        );
        prev = sol.loss;
    }
}

#[test]
fn emr_pipeline_beats_baselines_and_executes() {
    let mut config = emrsim::reaa::small_config(3);
    config.budget = 30.0;
    let spec = emrsim::reaa::build_game(&config).unwrap().dedup_actions();
    let bank = spec.sample_bank(200, 5);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);

    let ishm = Ishm::new(IshmConfig {
        epsilon: 0.3,
        ..Default::default()
    });
    let mut eval = CggsEvaluator::new(&spec, est, CggsConfig::default());
    let outcome = ishm.solve(&spec, &mut eval).unwrap();

    let rnd = random_orders_loss(&spec, &est, &outcome.thresholds, 200, 9).unwrap();
    let greedy = greedy_by_benefit_loss(&spec, &est).unwrap();
    assert!(
        outcome.value <= rnd + 1e-6,
        "proposed {} vs random orders {rnd}",
        outcome.value
    );
    assert!(
        outcome.value <= greedy + 1e-6,
        "proposed {} vs greedy {greedy}",
        outcome.value
    );

    // The solved policy is deployable on a realized alert queue.
    let policy = AuditPolicy::new(
        outcome.thresholds.clone(),
        outcome.orders.clone(),
        outcome.master.p_orders.clone(),
    );
    let alerts: Vec<RealizedAlert> = (0..40)
        .map(|i| RealizedAlert {
            alert_type: (i % 7) as usize,
            id: i,
        })
        .collect();
    let run = execute_policy(&policy, &spec, &alerts, &mut stochastics::seeded_rng(2));
    assert!(run.spent <= spec.budget + 1e-9);
    assert_eq!(run.n_audited() + run.skipped, alerts.len());
}

#[test]
fn credit_pipeline_deters_at_high_budget() {
    let base = creditsim::reab::build_game(&creditsim::reab::ReaBConfig {
        seed: 11,
        ..Default::default()
    })
    .unwrap()
    .dedup_actions();

    let solve_at = |budget: f64| {
        let mut spec = base.clone();
        spec.budget = budget;
        let bank = spec.sample_bank(150, 4);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let ishm = Ishm::new(IshmConfig {
            epsilon: 0.3,
            ..Default::default()
        });
        let mut eval = CggsEvaluator::new(&spec, est, CggsConfig::default());
        ishm.solve(&spec, &mut eval).unwrap().value
    };

    let low = solve_at(10.0);
    let high = solve_at(600.0);
    assert!(low > 100.0, "low-budget loss {low} suspiciously small");
    // Full coverage of all alert types ⇒ every attack is caught ⇒ the
    // opt-out attacker is completely deterred.
    assert!(high.abs() < 1e-6, "high-budget loss {high} should be 0");
}

#[test]
fn tdmt_log_statistics_flow_into_game() {
    // The emrsim profile must produce distributions whose support covers
    // the fitted mean — i.e. the statistics genuinely flow from the
    // simulated logs into F_t.
    let (spec, profile) =
        emrsim::reaa::build_game_with_profile(&emrsim::reaa::small_config(8)).unwrap();
    for (t, dist) in spec.distributions.iter().enumerate() {
        assert!(
            dist.support_max() as f64 >= profile.means[t],
            "type {t}: support {} below fitted mean {}",
            dist.support_max(),
            profile.means[t]
        );
    }
}

#[test]
fn solver_outputs_identical_across_thread_counts_and_reruns() {
    // One fixed master seed must pin down every number the pipeline emits:
    // the batched detection engine splits work by policy and accumulates in
    // a fixed order, so CGGS and ISHM outputs are bitwise-identical at any
    // thread count — and trivially across repeated runs.
    let spec = alert_audit::game::datasets::syn_a_with_budget(6.0);
    let bank = spec.sample_bank(200, 20180422);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
    let thresholds = vec![2.0, 2.0, 2.0, 2.0];

    // CGGS at fixed thresholds.
    let cggs_ref = alert_audit::game::cggs::Cggs::default()
        .solve(&spec, &est, &thresholds)
        .unwrap();
    // ISHM with the CGGS inner evaluator (the full heuristic pipeline).
    let ishm = Ishm::new(IshmConfig {
        epsilon: 0.2,
        ..Default::default()
    });
    let mut eval_ref = CggsEvaluator::new(&spec, est, CggsConfig::default());
    let ishm_ref = ishm.solve(&spec, &mut eval_ref).unwrap();

    for threads in [1usize, 2, 4] {
        for _rerun in 0..2 {
            let cggs = alert_audit::game::cggs::Cggs::new(CggsConfig {
                threads,
                ..Default::default()
            })
            .solve(&spec, &est, &thresholds)
            .unwrap();
            assert_eq!(
                cggs.master.value, cggs_ref.master.value,
                "threads {threads}"
            );
            assert_eq!(cggs.master.p_orders, cggs_ref.master.p_orders);
            assert_eq!(cggs.orders, cggs_ref.orders);
            assert_eq!(cggs.iterations, cggs_ref.iterations);

            let mut eval = CggsEvaluator::new(
                &spec,
                est,
                CggsConfig {
                    threads,
                    ..Default::default()
                },
            );
            let out = ishm.solve(&spec, &mut eval).unwrap();
            assert_eq!(out.value, ishm_ref.value, "threads {threads}");
            assert_eq!(out.thresholds, ishm_ref.thresholds);
            assert_eq!(out.master.p_orders, ishm_ref.master.p_orders);
            assert_eq!(out.orders, ishm_ref.orders);
            assert_eq!(
                out.stats.thresholds_explored,
                ishm_ref.stats.thresholds_explored
            );
        }
    }
}

#[test]
fn exact_and_cggs_inner_agree_on_syn_a() {
    let spec = alert_audit::game::datasets::syn_a_with_budget(8.0);
    let bank = spec.sample_bank(300, 6);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);

    let mut exact = ExactEvaluator::new(&spec, est);
    let a = Ishm::new(IshmConfig {
        epsilon: 0.25,
        ..Default::default()
    })
    .solve(&spec, &mut exact)
    .unwrap();
    let mut cggs = CggsEvaluator::new(&spec, est, CggsConfig::default());
    let b = Ishm::new(IshmConfig {
        epsilon: 0.25,
        ..Default::default()
    })
    .solve(&spec, &mut cggs)
    .unwrap();
    // For a FIXED threshold vector CGGS can only be equal or worse than the
    // exact inner LP, but ISHM's search *trajectory* differs between the
    // two evaluators, so either may land in the better local optimum. The
    // paper's observation (γ² ≈ γ¹) is that they stay close:
    assert!(
        (a.value - b.value).abs() / a.value.abs().max(1.0) < 0.05,
        "CGGS {} drifted from exact {}",
        b.value,
        a.value
    );
}
