//! The `tdmt-insider` scenario: rules over synthetic event logs, compiled
//! down to a solvable game.
//!
//! Unlike `emrsim`/`creditsim` — which model specific paper datasets —
//! this scenario exercises the TDMT substrate end to end as *the* data
//! source: a deterministic generator emits day-partitioned access events
//! with typed attribute payloads, a [`RuleEngine`] with registered
//! combination types labels them, an [`AlertProfile`] fits the per-type
//! benign count laws `F_t`, and a seeded insider/record attack grid is
//! labelled through the *same* engine. The result is a `GameSpec` whose
//! alert vocabulary, count models, and attack footprints all flow from
//! the rule machinery rather than from hand-written tables.

use crate::event::{AccessEvent, AttrValue, EntityId, RecordId};
use crate::log::AuditLog;
use crate::profile::{AlertProfile, FitKind};
use crate::rules::{CombinationPolicy, Rule, RuleEngine};
use audit_game::error::GameError;
use audit_game::model::{AttackAction, Attacker, GameSpec, GameSpecBuilder};
use audit_game::scenario::Scenario;
use rand::Rng;
use std::sync::Arc;
use stochastics::rng::stream_rng;
use stochastics::{CountDistribution, Poisson};

/// Per-type adversary benefit for the insider game.
pub const INSIDER_BENEFITS: [f64; 4] = [5.0, 6.0, 7.5, 9.0];
/// Capture penalty.
pub const INSIDER_PENALTY: f64 = 8.0;
/// Attack and audit unit cost.
pub const INSIDER_UNIT_COST: f64 = 0.5;
/// Mean daily benign alerts per type fed to the event generator.
pub const INSIDER_DAILY_MEANS: [f64; 4] = [8.0, 5.0, 3.0, 1.5];

/// Insider-threat scenario parameters.
#[derive(Debug, Clone)]
pub struct InsiderConfig {
    /// Observation window in days.
    pub n_days: u32,
    /// Insiders in the attack grid.
    pub n_insiders: usize,
    /// Records each insider can target.
    pub n_records: usize,
    /// Audit budget `B`.
    pub budget: f64,
    /// Count-model fit.
    pub fit: FitKind,
}

impl Default for InsiderConfig {
    fn default() -> Self {
        Self {
            n_days: 24,
            n_insiders: 6,
            n_records: 6,
            budget: 4.0,
            fit: FitKind::Gaussian,
        }
    }
}

/// The monitoring rules: three base predicates over event attributes,
/// with the subsets that occur in practice registered as combination
/// types (the fourth type is the after-hours bulk export combo).
pub fn insider_rule_engine() -> RuleEngine {
    let rules = vec![
        Rule::flag("after-hours", "after_hours"),
        Rule::flag("bulk-export", "bulk_export"),
        Rule::flag("foreign-ip", "foreign_ip"),
    ];
    let mut engine = RuleEngine::new(rules, CombinationPolicy::Registered);
    engine.register_combination("After Hours", vec![0]);
    engine.register_combination("Bulk Export", vec![1]);
    engine.register_combination("Foreign IP", vec![2]);
    engine.register_combination("After Hours; Bulk Export", vec![0, 1]);
    engine
}

/// The registered base-rule subsets, aligned with the type indices of
/// [`insider_rule_engine`].
const INSIDER_SUBSETS: [&[usize]; 4] = [&[0], &[1], &[2], &[0, 1]];

fn event_with_subset(entity: u32, record: u32, day: u32, subset: &[usize]) -> AccessEvent {
    let mut ev = AccessEvent::new(EntityId(entity), RecordId(record), day);
    for &r in subset {
        let attr = ["after_hours", "bulk_export", "foreign_ip"][r];
        ev.set_attr(attr, AttrValue::Bool(true));
    }
    ev
}

/// Simulate the benign observation log: per day, each alert type fires a
/// Poisson-distributed number of times on distinct (entity, record)
/// pairs, plus unflagged bulk traffic.
pub fn generate_insider_log(config: &InsiderConfig, seed: u64) -> AuditLog {
    let mut log = AuditLog::new();
    for day in 0..config.n_days {
        let mut rng = stream_rng(seed, 100 + day as u64);
        let mut serial = 0u32;
        for (t, subset) in INSIDER_SUBSETS.iter().enumerate() {
            let dist = Poisson::new(INSIDER_DAILY_MEANS[t]);
            let count = dist.sample(&mut rng);
            for _ in 0..count {
                // Distinct synthetic pairs so daily dedup keeps them all.
                log.push(event_with_subset(10_000 + serial, serial, day, subset));
                serial += 1;
            }
        }
        for _ in 0..20 {
            log.push(AccessEvent::new(
                EntityId(50_000 + serial),
                RecordId(serial),
                day,
            ));
            serial += 1;
        }
    }
    log
}

/// Compile the insider scenario to a game: fit `F_t` from the simulated
/// log, then label a seeded insider/record grid through the rule engine.
pub fn build_insider_game(config: &InsiderConfig, seed: u64) -> Result<GameSpec, GameError> {
    let engine = insider_rule_engine();
    let mut log = generate_insider_log(config, seed);
    log.dedup_daily();
    let profile = AlertProfile::fit(&log, &engine, config.fit);

    let mut b = GameSpecBuilder::new();
    for t in 0..profile.n_types() {
        b.alert_type(
            profile.type_names[t].clone(),
            INSIDER_UNIT_COST,
            profile.distributions[t].clone(),
        );
    }

    let mut rng = stream_rng(seed, 0x7D47);
    for e in 0..config.n_insiders {
        let actions: Vec<AttackAction> = (0..config.n_records)
            .map(|r| {
                // Each (insider, record) pair either leaves no footprint or
                // trips one of the registered attribute combinations; the
                // engine labels the hypothetical event exactly as the TDMT
                // would label the real access.
                if rng.gen_bool(0.2) {
                    AttackAction::benign(format!("r{r}"), INSIDER_UNIT_COST)
                } else {
                    let subset = INSIDER_SUBSETS[rng.gen_range(0..INSIDER_SUBSETS.len())];
                    let ev = event_with_subset(e as u32, r as u32, 0, subset);
                    let t = engine
                        .label(&ev)
                        .expect("registered subset")
                        .expect("non-empty subset");
                    AttackAction::deterministic(
                        format!("r{r}"),
                        t,
                        INSIDER_BENEFITS[t],
                        INSIDER_UNIT_COST,
                        INSIDER_PENALTY,
                    )
                }
            })
            .collect();
        b.attacker(Attacker::new(format!("insider{e}"), 1.0, actions));
    }
    b.budget(config.budget);
    b.allow_opt_out(true);
    b.build()
}

/// The `tdmt-insider` registry entry.
pub struct InsiderScenario;

impl Scenario for InsiderScenario {
    fn key(&self) -> &str {
        "tdmt-insider"
    }

    fn source(&self) -> &str {
        "tdmt"
    }

    fn describe(&self) -> String {
        let c = InsiderConfig::default();
        format!(
            "rule-engine insider threat: 4 registered combination types fitted from a {}-day \
             synthetic event log, {}x{} attack grid",
            c.n_days, c.n_insiders, c.n_records
        )
    }

    fn suggested_epsilon(&self) -> f64 {
        0.3
    }

    fn build(&self, seed: u64) -> Result<GameSpec, GameError> {
        build_insider_game(&InsiderConfig::default(), seed)
    }

    fn build_small(&self, seed: u64) -> Result<GameSpec, GameError> {
        build_insider_game(
            &InsiderConfig {
                n_days: 10,
                n_insiders: 4,
                n_records: 4,
                budget: 3.0,
                ..Default::default()
            },
            seed,
        )
    }

    fn alert_stream(&self, seed: u64, n_periods: usize) -> Result<Vec<Vec<u64>>, GameError> {
        let config = InsiderConfig {
            n_days: n_periods as u32,
            ..Default::default()
        };
        let engine = insider_rule_engine();
        let mut log = generate_insider_log(&config, seed);
        log.dedup_daily();
        let series = log.per_type_series(&engine, |_, _| {});
        Ok(transpose_series(&series, n_periods))
    }
}

/// Turn a per-type series (`series[t][day]`, as produced by
/// [`AuditLog::per_type_series`]) into per-period rows, padding missing
/// days with zero. Shared by the log-backed scenario adapters.
pub fn transpose_series(series: &[Vec<u64>], n_periods: usize) -> Vec<Vec<u64>> {
    (0..n_periods)
        .map(|day| {
            series
                .iter()
                .map(|obs| obs.get(day).copied().unwrap_or(0))
                .collect()
        })
        .collect()
}

/// The scenarios this crate contributes to the cross-crate registry.
pub fn scenarios() -> Vec<Arc<dyn Scenario>> {
    vec![Arc::new(InsiderScenario)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insider_game_compiles_through_the_rule_engine() {
        let spec = build_insider_game(&InsiderConfig::default(), 3).unwrap();
        assert_eq!(spec.n_types(), 4);
        assert_eq!(spec.n_attackers(), 6);
        assert_eq!(spec.n_actions(), 36);
        assert!(spec.allow_opt_out);
        spec.validate().unwrap();
        // Every alerting action carries the benefit of its engine-assigned
        // type.
        for att in &spec.attackers {
            for act in &att.actions {
                if let Some(&(t, _)) = act.alert_probs.first() {
                    assert_eq!(act.reward, INSIDER_BENEFITS[t]);
                }
            }
        }
    }

    #[test]
    fn build_is_deterministic_and_seeded() {
        let s = InsiderScenario;
        assert_eq!(
            s.build(5).unwrap().fingerprint(),
            s.build(5).unwrap().fingerprint()
        );
        assert_ne!(
            s.build(5).unwrap().fingerprint(),
            s.build(6).unwrap().fingerprint()
        );
    }

    #[test]
    fn fitted_means_track_generator_intensities() {
        let spec = build_insider_game(&InsiderConfig::default(), 1).unwrap();
        for (t, d) in spec.distributions.iter().enumerate() {
            let target = INSIDER_DAILY_MEANS[t];
            assert!(
                (d.mean() - target).abs() < target.sqrt() * 1.5 + 1.0,
                "type {t}: fitted mean {} vs intensity {target}",
                d.mean()
            );
        }
    }

    #[test]
    fn alert_stream_matches_requested_window() {
        let s = InsiderScenario;
        let stream = s.alert_stream(2, 6).unwrap();
        assert_eq!(stream.len(), 6);
        assert!(stream.iter().all(|row| row.len() == 4));
        assert_eq!(stream, s.alert_stream(2, 6).unwrap());
    }

    #[test]
    fn small_build_shrinks_the_grid() {
        let s = InsiderScenario;
        let small = s.build_small(0).unwrap();
        assert_eq!(small.n_attackers(), 4);
        assert_eq!(small.n_actions(), 16);
        small.validate().unwrap();
    }
}
