//! End-to-end smoke test: the `exp_exploration` experiment binary (the
//! Section IV.C `T` / `T'` exploration vectors) must run on a tiny grid
//! with an explicit `--scenario` selection and emit one row per ε.

use std::process::Command;

#[test]
fn exp_exploration_runs_end_to_end_with_scenario_flag() {
    let exe = env!("CARGO_BIN_EXE_exp_exploration");
    let out = Command::new(exe)
        .args(["2,4", "0.3,0.5", "40", "1", "--scenario", "syn-a"])
        .output()
        .expect("exp_exploration spawns");
    assert!(
        out.status.success(),
        "exp_exploration exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("T (mean explored)") && stdout.contains("T' (ratio of lattice)"),
        "missing exploration columns:\n{stdout}"
    );
    for eps in ["0.3", "0.5"] {
        assert!(
            stdout.lines().any(|l| l.starts_with(&format!("| {eps} "))),
            "missing row for eps {eps}:\n{stdout}"
        );
    }
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("scenario syn-a"),
        "stderr should echo the resolved scenario:\n{stderr}"
    );
}

#[test]
fn exp_exploration_rejects_unknown_scenario_with_key_list() {
    let exe = env!("CARGO_BIN_EXE_exp_exploration");
    let out = Command::new(exe)
        .args(["2", "0.3", "40", "1", "--scenario", "no-such-scenario"])
        .output()
        .expect("exp_exploration spawns");
    assert!(!out.status.success(), "unknown scenario must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no-such-scenario") && stderr.contains("syn-a"),
        "error should name the bad key and list known keys:\n{stderr}"
    );
}
