//! Common-random-number sample banks.
//!
//! The detection probability `Pal(o, b, t) ≈ E_Z[n_t(o,b,Z)/Z_t]` (eq. 1 of
//! the paper) is estimated by Monte Carlo over joint count realizations
//! `Z = (Z_1, …, Z_|T|)`. ISHM's accept/reject test compares objective values
//! of *different* threshold vectors; if each evaluation drew fresh samples,
//! sampling noise would routinely flip comparisons and derail the search.
//! A [`SampleBank`] therefore freezes one matrix of realizations per solver
//! run and evaluates every candidate policy on the same rows ("common random
//! numbers"). The `ablation_crn` benchmark quantifies what goes wrong
//! without this.

use crate::discrete::CountDistribution;
use crate::rng::stream_rng;

/// A frozen matrix of joint alert-count realizations.
///
/// Row `s` is one realization of the benign workload: `row(s)[t]` is the
/// number of benign type-`t` alerts in sample `s`. Types are sampled
/// independently, matching the paper's per-type `F_t` model.
#[derive(Debug, Clone)]
pub struct SampleBank {
    n_types: usize,
    n_samples: usize,
    /// Row-major `n_samples × n_types`.
    data: Vec<u64>,
}

impl SampleBank {
    /// Draw `n_samples` joint realizations from per-type distributions.
    ///
    /// Each type is sampled from its own derived RNG stream so that adding
    /// or removing a type does not perturb the draws of the others.
    pub fn generate(dists: &[Box<dyn CountDistribution>], n_samples: usize, seed: u64) -> Self {
        Self::generate_from(dists.iter().map(|d| d.as_ref()), n_samples, seed)
    }

    /// As [`SampleBank::generate`] but borrowing unboxed distributions.
    pub fn generate_from<'a, I>(dists: I, n_samples: usize, seed: u64) -> Self
    where
        I: IntoIterator<Item = &'a dyn CountDistribution>,
    {
        let dists: Vec<&dyn CountDistribution> = dists.into_iter().collect();
        let n_types = dists.len();
        assert!(n_types > 0, "need at least one alert type");
        assert!(n_samples > 0, "need at least one sample");
        let mut data = vec![0u64; n_samples * n_types];
        for (t, dist) in dists.iter().enumerate() {
            let mut rng = stream_rng(seed, t as u64);
            for s in 0..n_samples {
                data[s * n_types + t] = dist.sample(&mut rng);
            }
        }
        Self {
            n_types,
            n_samples,
            data,
        }
    }

    /// Build from explicit rows (used by tests and the hardness reduction,
    /// where `Z` is deterministic).
    pub fn from_rows(rows: Vec<Vec<u64>>) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let n_types = rows[0].len();
        assert!(n_types > 0, "rows must be non-empty");
        let n_samples = rows.len();
        let mut data = Vec::with_capacity(n_samples * n_types);
        for row in &rows {
            assert_eq!(row.len(), n_types, "ragged sample rows");
            data.extend_from_slice(row);
        }
        Self {
            n_types,
            n_samples,
            data,
        }
    }

    /// Number of alert types per row.
    pub fn n_types(&self) -> usize {
        self.n_types
    }

    /// Number of realizations.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// One realization of the joint count vector `Z`.
    #[inline]
    pub fn row(&self, s: usize) -> &[u64] {
        &self.data[s * self.n_types..(s + 1) * self.n_types]
    }

    /// Iterate over all realizations.
    pub fn rows(&self) -> impl Iterator<Item = &[u64]> {
        self.data.chunks_exact(self.n_types)
    }

    /// Sample mean count of type `t` across the bank.
    pub fn mean_count(&self, t: usize) -> f64 {
        assert!(t < self.n_types, "type index out of range");
        let sum: u64 = self.rows().map(|r| r[t]).sum();
        sum as f64 / self.n_samples as f64
    }

    /// Largest observed count of type `t` in the bank.
    pub fn max_count(&self, t: usize) -> u64 {
        assert!(t < self.n_types, "type index out of range");
        self.rows().map(|r| r[t]).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrete::{Constant, DiscretizedGaussian, UniformCount};

    fn dists() -> Vec<Box<dyn CountDistribution>> {
        vec![
            Box::new(DiscretizedGaussian::with_halfwidth(6.0, 2.0, 5)),
            Box::new(UniformCount::new(0, 4)),
            Box::new(Constant(3)),
        ]
    }

    #[test]
    fn shape_and_determinism() {
        let a = SampleBank::generate(&dists(), 500, 99);
        let b = SampleBank::generate(&dists(), 500, 99);
        assert_eq!(a.n_samples(), 500);
        assert_eq!(a.n_types(), 3);
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SampleBank::generate(&dists(), 200, 1);
        let b = SampleBank::generate(&dists(), 200, 2);
        assert_ne!(a.data, b.data);
    }

    #[test]
    fn per_type_streams_are_stable() {
        // Adding a new type must not change the draws of existing types.
        let all = dists();
        let narrow = SampleBank::generate_from(all[..2].iter().map(|d| d.as_ref()), 100, 5);
        let wide = SampleBank::generate(&all, 100, 5);
        for s in 0..100 {
            assert_eq!(narrow.row(s)[0], wide.row(s)[0]);
            assert_eq!(narrow.row(s)[1], wide.row(s)[1]);
        }
    }

    #[test]
    fn constant_column_is_constant() {
        let bank = SampleBank::generate(&dists(), 50, 3);
        assert!(bank.rows().all(|r| r[2] == 3));
        assert_eq!(bank.max_count(2), 3);
        assert!((bank.mean_count(2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_tracks_distribution() {
        let bank = SampleBank::generate(&dists(), 20_000, 11);
        assert!((bank.mean_count(0) - 6.0).abs() < 0.1);
        assert!((bank.mean_count(1) - 2.0).abs() < 0.1);
    }

    #[test]
    fn from_rows_roundtrip() {
        let bank = SampleBank::from_rows(vec![vec![1, 2], vec![3, 4], vec![5, 6]]);
        assert_eq!(bank.n_samples(), 3);
        assert_eq!(bank.row(1), &[3, 4]);
        assert_eq!(bank.max_count(1), 6);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_rejected() {
        SampleBank::from_rows(vec![vec![1, 2], vec![3]]);
    }
}
