//! Synthetic-grid experiment runners (paper Section IV, Tables III–VII).
//!
//! Historically these runners hard-coded the Syn A game; they now take any
//! base [`GameSpec`] (resolved from the scenario registry by the `exp_*`
//! binaries' `--scenario` flag) and sweep the audit budget over it.

use audit_game::brute_force::{solve_brute_force_with, threshold_space_size, BruteForceResult};
use audit_game::cggs::CggsConfig;
use audit_game::detection::{CacheStats, DetectionEstimator, DetectionModel, PalEngine};
use audit_game::error::GameError;
use audit_game::ishm::{CggsEvaluator, ExactEvaluator, Ishm, IshmConfig};
use audit_game::model::GameSpec;
use audit_game::ordering::AuditOrder;
use serde::{Deserialize, Serialize};

/// One row of Table III: the brute-force optimum for a budget.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimalRow {
    /// Audit budget `B`.
    pub budget: f64,
    /// Optimal objective value.
    pub value: f64,
    /// Optimal thresholds (budget units).
    pub thresholds: Vec<f64>,
    /// Support orders of the optimal mixed strategy.
    pub orders: Vec<AuditOrder>,
    /// Mixed-strategy probabilities aligned with `orders`.
    pub probs: Vec<f64>,
    /// Lattice points evaluated.
    pub explored: usize,
    /// Full lattice size.
    pub space_size: u128,
}

/// One cell of Tables IV/V: an ISHM (± CGGS) run at `(B, ε)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridCell {
    /// Audit budget `B`.
    pub budget: f64,
    /// ISHM step size ε.
    pub epsilon: f64,
    /// Achieved objective value.
    pub value: f64,
    /// Chosen thresholds (budget units).
    pub thresholds: Vec<f64>,
    /// Threshold vectors explored (Table VII counter).
    pub explored: usize,
}

/// Compute the Table III row for one budget by exhaustive search over the
/// base scenario's threshold lattice. `threads` sets the batch workers of
/// the detection engine (results are thread-count invariant).
pub fn optimal_for_budget(
    base: &GameSpec,
    budget: f64,
    n_samples: usize,
    seed: u64,
    threads: usize,
) -> Result<OptimalRow, GameError> {
    let mut spec = base.clone();
    spec.budget = budget;
    let bank = spec.sample_bank(n_samples, seed);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
    let orders = AuditOrder::enumerate_all(spec.n_types());
    let engine = PalEngine::uncached(est, threads);
    let bf: BruteForceResult = solve_brute_force_with(&spec, &engine, &orders)?;
    // Keep only the support of the mixed strategy for reporting.
    let mut orders_kept = Vec::new();
    let mut probs_kept = Vec::new();
    for (o, &p) in bf.orders.iter().zip(&bf.master.p_orders) {
        if p > 1e-6 {
            orders_kept.push(o.clone());
            probs_kept.push(p);
        }
    }
    Ok(OptimalRow {
        budget,
        value: bf.value,
        thresholds: bf.thresholds,
        orders: orders_kept,
        probs: probs_kept,
        explored: bf.explored,
        space_size: bf.space_size,
    })
}

/// Compute Table III over a budget grid, one thread per budget.
pub fn table3(
    base: &GameSpec,
    budgets: &[f64],
    n_samples: usize,
    seed: u64,
    threads: usize,
) -> Result<Vec<OptimalRow>, GameError> {
    parallel_map(budgets, |&b| {
        optimal_for_budget(base, b, n_samples, seed, threads)
    })
}

/// Run ISHM at one `(B, ε)` grid point. `use_cggs` selects the Table V
/// variant (CGGS inner evaluator) over the Table IV variant (exact inner).
pub fn ishm_cell(
    base: &GameSpec,
    budget: f64,
    epsilon: f64,
    use_cggs: bool,
    n_samples: usize,
    seed: u64,
    threads: usize,
) -> Result<GridCell, GameError> {
    Ok(ishm_cell_with_stats(base, budget, epsilon, use_cggs, n_samples, seed, threads)?.0)
}

/// As [`ishm_cell`], additionally returning the detection-engine counters
/// of the run's evaluator (behind `--cache-stats` in the drivers).
#[allow(clippy::too_many_arguments)]
pub fn ishm_cell_with_stats(
    base: &GameSpec,
    budget: f64,
    epsilon: f64,
    use_cggs: bool,
    n_samples: usize,
    seed: u64,
    threads: usize,
) -> Result<(GridCell, CacheStats), GameError> {
    let mut spec = base.clone();
    spec.budget = budget;
    let bank = spec.sample_bank(n_samples, seed);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
    let ishm = Ishm::new(IshmConfig {
        epsilon,
        ..Default::default()
    });
    let (outcome, cache) = if use_cggs {
        let mut eval = CggsEvaluator::new(
            &spec,
            est,
            CggsConfig {
                threads,
                ..Default::default()
            },
        );
        let outcome = ishm.solve(&spec, &mut eval)?;
        let cache = eval.engine().cache_stats();
        (outcome, cache)
    } else {
        let mut eval = ExactEvaluator::with_threads(&spec, est, threads);
        let outcome = ishm.solve(&spec, &mut eval)?;
        let cache = eval.engine().cache_stats();
        (outcome, cache)
    };
    Ok((
        GridCell {
            budget,
            epsilon,
            value: outcome.value,
            thresholds: outcome.thresholds,
            explored: outcome.stats.thresholds_explored,
        },
        cache,
    ))
}

/// The full `(B, ε)` grid of Table IV (or V with `use_cggs`). Outer index:
/// budget; inner index: epsilon.
pub fn ishm_grid(
    base: &GameSpec,
    budgets: &[f64],
    epsilons: &[f64],
    use_cggs: bool,
    n_samples: usize,
    seed: u64,
    threads: usize,
) -> Result<Vec<Vec<GridCell>>, GameError> {
    Ok(ishm_grid_with_stats(base, budgets, epsilons, use_cggs, n_samples, seed, threads)?.0)
}

/// As [`ishm_grid`], additionally returning the detection-engine counters
/// summed across every cell's evaluator.
#[allow(clippy::too_many_arguments)]
pub fn ishm_grid_with_stats(
    base: &GameSpec,
    budgets: &[f64],
    epsilons: &[f64],
    use_cggs: bool,
    n_samples: usize,
    seed: u64,
    threads: usize,
) -> Result<(Vec<Vec<GridCell>>, CacheStats), GameError> {
    let rows = parallel_map(budgets, |&b| {
        epsilons
            .iter()
            .map(|&e| ishm_cell_with_stats(base, b, e, use_cggs, n_samples, seed, threads))
            .collect::<Result<Vec<_>, _>>()
    })?;
    let mut stats = CacheStats::default();
    let grid = rows
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|(cell, cache)| {
                    stats.absorb(&cache);
                    cell
                })
                .collect()
        })
        .collect();
    Ok((grid, stats))
}

/// Table VI's γ precision per epsilon: `γ_ε = 1 − mean_B |Ŝ − S|/|S|`.
pub fn gamma_per_epsilon(optimal: &[OptimalRow], grid: &[Vec<GridCell>]) -> Vec<f64> {
    assert_eq!(optimal.len(), grid.len(), "budget grids must align");
    let n_eps = grid.first().map(|row| row.len()).unwrap_or(0);
    (0..n_eps)
        .map(|e| {
            let approx: Vec<f64> = grid.iter().map(|row| row[e].value).collect();
            let exact: Vec<f64> = optimal.iter().map(|r| r.value).collect();
            1.0 - stochastics::stats::mean_relative_deviation(&approx, &exact)
        })
        .collect()
}

/// Section IV.C exploration summary: per epsilon, the mean number of
/// threshold vectors ISHM explored over the budget grid (`T`), and the
/// ratio against the base scenario's exhaustive lattice (`T'`).
pub fn exploration_summary(base: &GameSpec, grid: &[Vec<GridCell>]) -> Vec<(f64, f64, f64)> {
    let n_eps = grid.first().map(|row| row.len()).unwrap_or(0);
    let space = threshold_space_size(base) as f64;
    (0..n_eps)
        .map(|e| {
            let eps = grid[0][e].epsilon;
            let mean = stochastics::stats::mean(
                &grid
                    .iter()
                    .map(|row| row[e].explored as f64)
                    .collect::<Vec<_>>(),
            );
            (eps, mean, mean / space)
        })
        .collect()
}

/// Order-preserving parallel map over a slice (one thread per item).
fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    f: impl Fn(&T) -> Result<R, GameError> + Sync,
) -> Result<Vec<R>, GameError> {
    let results: Vec<Result<R, GameError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items.iter().map(|item| scope.spawn(|| f(item))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread panicked"))
            .collect()
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use audit_game::datasets::syn_a;

    #[test]
    fn optimal_row_matches_paper_magnitude_at_b2() {
        // Table III row 1: optimum 12.2945 with thresholds [1,1,1,1]. Our
        // Monte-Carlo estimate differs in the decimals but must land close.
        let row = optimal_for_budget(&syn_a(), 2.0, 300, 7, 2).unwrap();
        assert!(
            (row.value - 12.29).abs() < 0.6,
            "B=2 optimum {} far from paper's 12.2945",
            row.value
        );
        assert_eq!(row.space_size, 12 * 10 * 8 * 8);
    }

    #[test]
    fn optimal_values_decrease_with_budget() {
        let rows = table3(&syn_a(), &[2.0, 6.0, 12.0], 150, 7, 1).unwrap();
        assert!(rows[0].value > rows[1].value);
        assert!(rows[1].value > rows[2].value);
    }

    #[test]
    fn ishm_cell_close_to_optimal_at_fine_epsilon() {
        let opt = optimal_for_budget(&syn_a(), 6.0, 150, 7, 1).unwrap();
        let cell = ishm_cell(&syn_a(), 6.0, 0.1, false, 150, 7, 1).unwrap();
        let gap = (cell.value - opt.value).abs() / opt.value.abs();
        assert!(
            gap < 0.05,
            "ISHM value {} vs optimal {}",
            cell.value,
            opt.value
        );
        assert!(cell.value >= opt.value - 1e-7);
    }

    #[test]
    fn gamma_is_one_for_perfect_grid() {
        let opt = vec![OptimalRow {
            budget: 2.0,
            value: 10.0,
            thresholds: vec![],
            orders: vec![],
            probs: vec![],
            explored: 1,
            space_size: 1,
        }];
        let grid = vec![vec![GridCell {
            budget: 2.0,
            epsilon: 0.1,
            value: 10.0,
            thresholds: vec![],
            explored: 5,
        }]];
        let g = gamma_per_epsilon(&opt, &grid);
        assert!((g[0] - 1.0).abs() < 1e-12);
    }
}
