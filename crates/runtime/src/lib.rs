//! # audit-runtime — the online epoch-based auditing service
//!
//! The paper frames auditing as a per-period operational loop: nature
//! draws alert counts each period and the defender's *committed* policy is
//! executed. The solver crates answer "what policy to commit"; this crate
//! answers "how to run it, day after day, when the workload refuses to
//! stay stationary". It is the operational layer between a solved
//! [`audit_game::execute::AuditPolicy`] and a live alert stream:
//!
//! * [`online::OnlineFit`] — per-alert-type streaming distribution
//!   tracking: exact O(1) lifetime moments
//!   ([`stochastics::StreamingMoments`]) plus a sliding window of recent
//!   periods for refitting;
//! * [`online::DriftConfig`] — the goodness-of-fit drift gate: each epoch
//!   the recent window is tested against the committed count model
//!   ([`stochastics::gof::ks_statistic`]) and a re-solve is triggered only
//!   when the fit has broken down (or a staleness bound is hit);
//! * [`service::AuditService`] — the deterministic epoch loop: ingest
//!   per-period alert vectors from any registry
//!   [`audit_game::scenario::Scenario::alert_stream`], execute the
//!   committed policy every period, gate on drift every epoch, and
//!   re-solve **warm** from the incumbent solution
//!   ([`audit_game::solver::OapSolver::solve_warm`]) so the service keeps
//!   serving between cheap re-solves;
//! * [`checkpoint`] — warm service restart: freeze the loop state at any
//!   epoch boundary into a checkpoint directory
//!   ([`service::AuditService::checkpoint`]) and thaw it in a fresh
//!   process ([`service::AuditService::restore`] +
//!   [`service::AuditService::resume`]) with a report fingerprint
//!   bit-identical to an uninterrupted run;
//! * [`fleet`] — the multi-tenant scheduler: N independent tenant
//!   streams (each its own scenario instance, seed, drift gate, and
//!   committed policy) multiplexed over a bounded worker pool, with one
//!   [`audit_game::detection::SharedPalCache`] amortizing solver work
//!   across tenants whose sample banks coincide; per-tenant reports are
//!   bit-identical to running each tenant alone, at every worker count;
//! * [`telemetry`] — structured per-epoch telemetry (realized detection
//!   rates, gap to the predicted `Pal`, drift statistics, solve latency,
//!   epochs-since-resolve) with a deterministic fingerprint: reruns and
//!   different thread counts produce bit-identical logs (wall-clock
//!   fields are excluded from the fingerprint);
//! * [`supervisor`] — deterministic fault injection
//!   ([`supervisor::FaultPlan`] / [`supervisor::FaultInjector`]), the
//!   tenant quarantine record ([`supervisor::TenantHealth`]), and
//!   round-based retry backoff ([`supervisor::RetryPolicy`]): every
//!   failure the fleet survives is planned, fingerprintable, and
//!   replayable, and tenants untouched by the plan stay bit-identical
//!   to a fault-free run.
//!
//! Everything is deterministic given the configuration seed; the umbrella
//! crate (`alert_audit::telemetry`) renders the telemetry as JSON and the
//! `exp_online` driver runs the service from the command line.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod fleet;
pub mod online;
pub mod service;
pub mod supervisor;
pub mod telemetry;

pub use checkpoint::{
    load_checkpoint, recover_checkpoint, restore_or_cold, save_checkpoint, LoadedCheckpoint,
    RecoveryReport, RecoverySource,
};
pub use fleet::{FleetConfig, FleetReport, FleetService, FleetTenantReport, TenantSpec};
pub use online::{DriftConfig, OnlineFit};
pub use service::{warm_start_rescaled, AuditService, RuntimeConfig, ServiceState};
pub use supervisor::{
    corrupt_file, panic_message, FaultInjector, FaultPlan, FaultSite, RetryPolicy, TenantFailure,
    TenantHealth,
};
pub use telemetry::{EpochTelemetry, ResolveStats, RuntimeReport};
