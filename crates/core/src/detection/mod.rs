//! Recourse budget math and detection probabilities.
//!
//! Given an order `o`, thresholds `b`, and a realization of benign counts
//! `Z`, the paper defines (Section II-B):
//!
//! ```text
//! B_t(o,b,Z) = max( ⌊(B − Σ_{i<o(t)} min{b_{o_i}, Z_{o_i}·C_{o_i}}) / C_t⌋, 0 )
//! n_t(o,b,Z) = min( B_t(o,b,Z), ⌊b_t/C_t⌋, Z_t )
//! Pal(o,b,t) ≈ E_Z[ n_t(o,b,Z) / Z_t ]                         (eq. 1)
//! ```
//!
//! `Pal` is estimated by Monte Carlo over a frozen [`SampleBank`] (common
//! random numbers; see `stochastics::bank`). Three variants of the
//! per-sample detection ratio are provided — the paper's approximation and
//! two refinements used for ablation studies.
//!
//! Two evaluation paths share the same arithmetic:
//!
//! * [`DetectionEstimator`] — the scalar reference: one policy at a time,
//!   one row of the bank at a time;
//! * [`PalEngine`] — the batched engine: many `(sequence, thresholds)`
//!   queries in one call, grouped into a **prefix trie** so shared audit
//!   prefixes are evaluated once per batch (and carried *across* batches
//!   by a prefix-state cache), streamed column-by-column over the bank's
//!   compact layout, fanned out over [`std::thread::scope`] workers (one
//!   trie subtree per worker at a time) and memoized across calls.
//!
//! Both paths accumulate each type's detection mass over samples in
//! ascending sample order and per-sample budget consumption in audit-order
//! type order, through the shared [`detection_step`] kernel — so the engine
//! is **bit-identical** to the scalar reference at every thread count (see
//! `tests/detection_equivalence.rs`). The engine internals live in the
//! `engine`, `trie` and `cache` submodules; everything public is
//! re-exported here.

mod cache;
mod engine;
mod shared;
mod trie;

pub use engine::{
    CacheStats, PalEngine, PalStateSeed, DEFAULT_PAL_CACHE_CAPACITY, DEFAULT_STATE_CACHE_BYTES,
};
pub use shared::{shared_bank_key, SharedCacheStats, SharedPalCache};

use crate::model::GameSpec;
use crate::ordering::AuditOrder;
use serde::{Deserialize, Serialize};
use stochastics::SampleBank;

/// How the per-sample detection ratio of an attack alert is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DetectionModel {
    /// The paper's approximation `n_t/Z_t` (eq. 1), with the `Z_t = 0` case
    /// resolved naturally: the attack alert would then be the *only* type-`t`
    /// alert, so it is caught iff at least one type-`t` audit is affordable.
    #[default]
    PaperApprox,
    /// Attack-inclusive ratio: recompute `n_t` with `Z_t + 1` alerts present
    /// and return `min(n_t, Z_t+1)/(Z_t+1)` — the exact probability that a
    /// uniformly-placed attack alert is among the audited ones.
    AttackInclusive,
    /// Operational recourse: identical ratio to [`DetectionModel::PaperApprox`]
    /// but earlier types consume only the budget *actually spent*
    /// (`n_t · C_t`) rather than the paper's `min{b_t, Z_t·C_t}` surrogate.
    /// This models a real auditor who banks unused type budget.
    Operational,
}

/// Monte-Carlo estimator of detection probabilities over a fixed sample
/// bank. Cheap to construct; borrows the spec and bank.
#[derive(Debug, Clone, Copy)]
pub struct DetectionEstimator<'a> {
    spec: &'a GameSpec,
    bank: &'a SampleBank,
    model: DetectionModel,
}

impl<'a> DetectionEstimator<'a> {
    /// Build an estimator. The bank must have one column per alert type.
    pub fn new(spec: &'a GameSpec, bank: &'a SampleBank, model: DetectionModel) -> Self {
        assert_eq!(
            bank.n_types(),
            spec.n_types(),
            "sample bank columns must match alert types"
        );
        Self { spec, bank, model }
    }

    /// The detection model in use.
    pub fn model(&self) -> DetectionModel {
        self.model
    }

    /// The sample bank backing the estimate.
    pub fn bank(&self) -> &SampleBank {
        self.bank
    }

    /// `Pal(o, b, t)` for every type `t`, as a vector indexed by type.
    ///
    /// Types are processed in audit order; a type's detection probability
    /// depends only on its predecessors, which is what makes the greedy
    /// column oracle of CGGS incremental.
    pub fn pal(&self, order: &AuditOrder, thresholds: &[f64]) -> Vec<f64> {
        assert_eq!(
            order.len(),
            self.spec.n_types(),
            "order/type arity mismatch"
        );
        assert_eq!(thresholds.len(), self.spec.n_types());
        let mut acc = vec![0.0f64; self.spec.n_types()];
        for z in self.bank.rows() {
            self.accumulate_sample(order.types(), thresholds, z, &mut acc);
        }
        let n = self.bank.n_samples() as f64;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }

    /// `Pal` restricted to a *prefix* of an order: types in `prefix` are
    /// audited in the given sequence; the remaining types are treated as
    /// never audited (probability 0). Used by the CGGS greedy oracle, which
    /// extends a partial order one type at a time (Algorithm 1, line 6).
    pub fn pal_prefix(&self, prefix: &[usize], thresholds: &[f64]) -> Vec<f64> {
        assert!(prefix.len() <= self.spec.n_types());
        assert_eq!(thresholds.len(), self.spec.n_types());
        let mut acc = vec![0.0f64; self.spec.n_types()];
        for z in self.bank.rows() {
            self.accumulate_sample(prefix, thresholds, z, &mut acc);
        }
        let n = self.bank.n_samples() as f64;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }

    /// One sample's detection ratios, added into `acc` (indexed by type).
    fn accumulate_sample(&self, seq: &[usize], thresholds: &[f64], z: &[u64], acc: &mut [f64]) {
        let costs = &self.spec.alert_types;
        let budget = self.spec.budget;
        // Cumulative budget consumed by predecessor types.
        let mut consumed = 0.0f64;
        for &t in seq {
            let c_t = costs[t].audit_cost;
            let b_t = thresholds[t];
            let thresh_cap = (b_t / c_t).floor().max(0.0);
            let (contrib, spent) =
                detection_step(self.model, budget, c_t, b_t, thresh_cap, consumed, z[t]);
            acc[t] += contrib;
            consumed += spent;
        }
    }

    /// Average number of alerts of each type audited per period under
    /// `(o, b)` — an operational statistic reported by the harness.
    pub fn expected_audited(&self, order: &AuditOrder, thresholds: &[f64]) -> Vec<f64> {
        let costs = &self.spec.alert_types;
        let budget = self.spec.budget;
        let mut acc = vec![0.0f64; self.spec.n_types()];
        for chunk in self.bank.par_chunks(PAL_CHUNK_ROWS) {
            for z in chunk.rows() {
                let mut consumed = 0.0f64;
                for &t in order.types() {
                    let c_t = costs[t].audit_cost;
                    let b_t = thresholds[t];
                    let zt = z[t] as f64;
                    let remaining = budget - consumed;
                    let bt_cap = if remaining > 0.0 {
                        (remaining / c_t).floor().max(0.0)
                    } else {
                        0.0
                    };
                    let n_t = bt_cap.min((b_t / c_t).floor().max(0.0)).min(zt);
                    acc[t] += n_t;
                    consumed += match self.model {
                        DetectionModel::Operational => n_t * c_t,
                        _ => b_t.min(zt * c_t),
                    };
                }
            }
        }
        let n = self.bank.n_samples() as f64;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }
}

/// Row-block granularity used when walking the bank through its chunk
/// iterator. Purely a traversal detail (chunks are consumed in order), so
/// the value only affects locality, never results.
const PAL_CHUNK_ROWS: usize = 1024;

/// `B_t` — the remaining per-type audit capacity in alert units, given the
/// budget already consumed by the type's predecessors within one sample.
/// Split out of [`detection_step`] so the engine's single-coordinate sweep
/// kernel can compute it **once per trie node** and reuse it across every
/// sibling threshold (the cap does not depend on the type's own `b_t`).
#[inline(always)]
pub(crate) fn budget_cap(budget: f64, c_t: f64, consumed: f64) -> f64 {
    let remaining = budget - consumed;
    if remaining > 0.0 {
        (remaining / c_t).floor().max(0.0)
    } else {
        0.0
    }
}

/// The capped tail of [`detection_step`]: everything downstream of `B_t`.
/// Shared by the fused per-sample kernel and the sweep kernel, so both
/// perform exactly the same floating-point operations on exactly the same
/// operands.
#[inline(always)]
pub(crate) fn detection_step_capped(
    model: DetectionModel,
    bt_cap: f64,
    c_t: f64,
    b_t: f64,
    thresh_cap: f64,
    zt: u64,
) -> (f64, f64) {
    match model {
        DetectionModel::PaperApprox => {
            let n_t = bt_cap.min(thresh_cap).min(zt as f64);
            let contrib = if zt > 0 {
                n_t / zt as f64
            } else if bt_cap.min(thresh_cap) >= 1.0 {
                // The attack alert would be the lone type-t alert.
                1.0
            } else {
                0.0
            };
            (contrib, b_t.min(zt as f64 * c_t))
        }
        DetectionModel::AttackInclusive => {
            let z_plus = zt as f64 + 1.0;
            let n_t = bt_cap.min(thresh_cap).min(z_plus);
            (n_t / z_plus, b_t.min(zt as f64 * c_t))
        }
        DetectionModel::Operational => {
            let n_t = bt_cap.min(thresh_cap).min(zt as f64);
            let contrib = if zt > 0 {
                n_t / zt as f64
            } else if bt_cap.min(thresh_cap) >= 1.0 {
                1.0
            } else {
                0.0
            };
            (contrib, n_t * c_t)
        }
    }
}

/// The per-`(sample, type)` kernel shared by the scalar reference path and
/// the batched engine: given the budget consumed by the type's predecessors
/// within this sample, return `(detection contribution, budget consumed by
/// this type)`.
///
/// Keeping this in one place is what guarantees the two paths agree
/// *bitwise*: both perform exactly this arithmetic on exactly the same
/// operands, and differ only in loop nesting order (row-major vs
/// trie-node-major), which touches no floating-point operation.
#[inline]
fn detection_step(
    model: DetectionModel,
    budget: f64,
    c_t: f64,
    b_t: f64,
    thresh_cap: f64,
    consumed: f64,
    zt: u64,
) -> (f64, f64) {
    detection_step_capped(
        model,
        budget_cap(budget, c_t, consumed),
        c_t,
        b_t,
        thresh_cap,
        zt,
    )
}

/// One batched detection query: evaluate `Pal` for the audit sequence
/// `seq` (a full order or a prefix; types not in `seq` get probability 0)
/// under per-type `thresholds`.
#[derive(Debug, Clone, PartialEq)]
pub struct PalQuery {
    /// Audit sequence (distinct type indices, in audit order).
    pub seq: Vec<usize>,
    /// Per-type budget thresholds `b_t` (full arity, indexed by type).
    pub thresholds: Vec<f64>,
}

impl PalQuery {
    /// Query for a complete audit order.
    pub fn full(order: &AuditOrder, thresholds: &[f64]) -> Self {
        Self {
            seq: order.types().to_vec(),
            thresholds: thresholds.to_vec(),
        }
    }

    /// Query for a prefix of an order (remaining types never audited).
    pub fn prefix(prefix: &[usize], thresholds: &[f64]) -> Self {
        Self {
            seq: prefix.to_vec(),
            thresholds: thresholds.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AttackAction, Attacker, GameSpecBuilder};
    use std::sync::Arc;
    use stochastics::Constant;

    /// Two types, deterministic Z = (2, 3), C = (1, 1).
    fn spec(budget: f64) -> GameSpec {
        let mut b = GameSpecBuilder::new();
        let t0 = b.alert_type("t0", 1.0, Arc::new(Constant(2)));
        let _t1 = b.alert_type("t1", 1.0, Arc::new(Constant(3)));
        b.attacker(Attacker::new(
            "e",
            1.0,
            vec![AttackAction::deterministic("v", t0, 1.0, 0.0, 0.0)],
        ));
        b.budget(budget);
        b.build().unwrap()
    }

    fn bank_for(spec: &GameSpec) -> SampleBank {
        spec.sample_bank(4, 0)
    }

    #[test]
    fn full_budget_audits_everything() {
        let s = spec(10.0);
        let bank = bank_for(&s);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let pal = est.pal(&AuditOrder::identity(2), &[10.0, 10.0]);
        assert!((pal[0] - 1.0).abs() < 1e-12);
        assert!((pal[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn budget_starves_later_types() {
        // B = 2: type 0 consumes min(b0, Z0·C0) = 2, leaving nothing.
        let s = spec(2.0);
        let bank = bank_for(&s);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let pal = est.pal(&AuditOrder::identity(2), &[10.0, 10.0]);
        assert!((pal[0] - 1.0).abs() < 1e-12);
        assert!(pal[1].abs() < 1e-12);
    }

    #[test]
    fn threshold_caps_detection() {
        // b0 = 1 with Z0 = 2: only 1 of 2 audited → Pal_0 = 0.5; the other
        // budget unit flows to type 1 (B=2): 1 of 3 audited.
        let s = spec(2.0);
        let bank = bank_for(&s);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let pal = est.pal(&AuditOrder::identity(2), &[1.0, 10.0]);
        assert!((pal[0] - 0.5).abs() < 1e-12);
        assert!((pal[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn order_matters() {
        let s = spec(2.0);
        let bank = bank_for(&s);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let pal_01 = est.pal(&AuditOrder::new(vec![0, 1]).unwrap(), &[10.0, 10.0]);
        let pal_10 = est.pal(&AuditOrder::new(vec![1, 0]).unwrap(), &[10.0, 10.0]);
        // Under [0,1]: type 0 gets all budget. Under [1,0]: type 1 gets it.
        assert!(pal_01[0] > pal_10[0]);
        assert!(pal_10[1] > pal_01[1]);
    }

    #[test]
    fn zero_threshold_means_zero_detection() {
        let s = spec(10.0);
        let bank = bank_for(&s);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let pal = est.pal(&AuditOrder::identity(2), &[0.0, 10.0]);
        assert_eq!(pal[0], 0.0);
        assert!((pal[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prefix_matches_full_order_on_prefix_types() {
        let s = spec(2.0);
        let bank = bank_for(&s);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let full = est.pal(&AuditOrder::identity(2), &[1.0, 10.0]);
        let prefix = est.pal_prefix(&[0], &[1.0, 10.0]);
        assert!((full[0] - prefix[0]).abs() < 1e-12);
        assert_eq!(prefix[1], 0.0);
    }

    #[test]
    fn attack_inclusive_is_at_most_paper_when_counts_positive() {
        let s = spec(2.0);
        let bank = bank_for(&s);
        let paper = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox)
            .pal(&AuditOrder::identity(2), &[1.0, 1.0]);
        let incl = DetectionEstimator::new(&s, &bank, DetectionModel::AttackInclusive)
            .pal(&AuditOrder::identity(2), &[1.0, 1.0]);
        // With Z_t ≥ 1 everywhere, n/(Z+1) ≤ n/Z.
        for t in 0..2 {
            assert!(incl[t] <= paper[t] + 1e-12);
        }
    }

    #[test]
    fn operational_banks_unused_budget() {
        // b0 = 2 but Z0 = 2 and only 1 unit affordable... use b0=2, B=3:
        // Paper: consumed = min(2, 2) = 2 → type 1 capacity 1 → 1/3.
        // Same here; differentiate via a tighter threshold: b0 = 5, Z0 = 2,
        // B = 5. Paper consumes min(5, 2) = 2; operational consumes n·C = 2.
        // Differentiating case: threshold larger than realized cost but
        // budget-capped: B = 1.5, C0 = 1, b0 = 5: bt_cap = 1 → n = 1,
        // paper consumes min(5, 2) = 2 (over-consumes!), operational 1.
        let s = spec(1.5);
        let bank = bank_for(&s);
        let paper = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox)
            .pal(&AuditOrder::identity(2), &[5.0, 5.0]);
        let oper = DetectionEstimator::new(&s, &bank, DetectionModel::Operational)
            .pal(&AuditOrder::identity(2), &[5.0, 5.0]);
        assert!((paper[0] - 0.5).abs() < 1e-12);
        assert!((oper[0] - 0.5).abs() < 1e-12);
        // Paper: consumed 2 > B → nothing left. Operational: consumed 1,
        // remaining 0.5 < C → still nothing. Use B = 2.5 instead:
        let s = spec(2.5);
        let bank = bank_for(&s);
        let paper = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox)
            .pal(&AuditOrder::identity(2), &[5.0, 5.0]);
        let oper = DetectionEstimator::new(&s, &bank, DetectionModel::Operational)
            .pal(&AuditOrder::identity(2), &[5.0, 5.0]);
        // Both audit both type-0 alerts (bt_cap = 2).
        assert!((paper[0] - 1.0).abs() < 1e-12);
        assert!((oper[0] - 1.0).abs() < 1e-12);
        // Paper consumed min(5, 2) = 2 → 0.5 left → 0 audits of type 1.
        // Operational consumed 2·1 = 2 → identical here. The models only
        // diverge when thresholds bind below realized counts:
        let pal_paper = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox)
            .pal(&AuditOrder::identity(2), &[1.0, 5.0]);
        let pal_oper = DetectionEstimator::new(&s, &bank, DetectionModel::Operational)
            .pal(&AuditOrder::identity(2), &[1.0, 5.0]);
        // consumed: paper min(1, 2) = 1; operational n·C = 1. Equal again —
        // and that is the invariant: with unit costs and integral thresholds
        // the two consumption rules agree; they differ only for fractional
        // thresholds:
        let pal_paper_frac = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox)
            .pal(&AuditOrder::identity(2), &[1.5, 5.0]);
        let pal_oper_frac = DetectionEstimator::new(&s, &bank, DetectionModel::Operational)
            .pal(&AuditOrder::identity(2), &[1.5, 5.0]);
        // Type 0: 1 audit either way.
        assert!((pal_paper_frac[0] - 0.5).abs() < 1e-12);
        assert!((pal_oper_frac[0] - 0.5).abs() < 1e-12);
        // Paper consumes 1.5 → 1.0 left → 1 audit of type 1 (Z=3): 1/3.
        // Operational consumes 1.0 → 1.5 left → 1 audit: 1/3. Same floor.
        assert!((pal_paper_frac[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((pal_oper_frac[1] - 1.0 / 3.0).abs() < 1e-12);
        // They must never give the later type LESS than paper's rule.
        for t in 0..2 {
            assert!(pal_oper[t] + 1e-12 >= pal_paper[t]);
            assert!(pal_oper_frac[t] + 1e-12 >= pal_paper_frac[t]);
        }
    }

    #[test]
    fn zero_count_rule_detects_lone_attack_alert() {
        // Z0 = 0 via Constant(0): attack alert is the only one.
        let mut b = GameSpecBuilder::new();
        let t0 = b.alert_type("t0", 1.0, Arc::new(Constant(0)));
        b.attacker(Attacker::new(
            "e",
            1.0,
            vec![AttackAction::deterministic("v", t0, 1.0, 0.0, 0.0)],
        ));
        b.budget(1.0);
        let s = b.build().unwrap();
        let bank = SampleBank::from_rows(vec![vec![0]]);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let pal = est.pal(&AuditOrder::identity(1), &[1.0]);
        assert!((pal[0] - 1.0).abs() < 1e-12);
        // With zero threshold the lone alert cannot be audited.
        let pal = est.pal(&AuditOrder::identity(1), &[0.0]);
        assert_eq!(pal[0], 0.0);
    }

    #[test]
    fn expected_audited_respects_budget() {
        let s = spec(2.0);
        let bank = bank_for(&s);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let audited = est.expected_audited(&AuditOrder::identity(2), &[10.0, 10.0]);
        let spent: f64 = audited
            .iter()
            .zip(s.audit_costs())
            .map(|(&n, c)| n * c)
            .sum();
        assert!(spent <= s.budget + 1e-9);
    }
}
