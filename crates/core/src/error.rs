//! Error type for game construction and solving.

use crate::persist::PersistError;
use lp_solver::LpError;
use std::fmt;

/// Errors raised while building or solving an alert-prioritization game.
#[derive(Debug, Clone, PartialEq)]
pub enum GameError {
    /// The [`crate::model::GameSpec`] is structurally invalid.
    InvalidSpec(String),
    /// The embedded linear program could not be solved.
    Lp(LpError),
    /// A solver was configured inconsistently (e.g. ε outside `(0, 1]`).
    InvalidConfig(String),
    /// A scenario key was not found in the registry. Carries the unknown
    /// key and the keys that are registered.
    UnknownScenario {
        /// The key that failed to resolve.
        key: String,
        /// All registered keys, in registration order.
        known: Vec<String>,
    },
    /// Loading or saving a persistent snapshot failed.
    Persist(PersistError),
    /// An ingested alert epoch was malformed: a period row's arity did not
    /// match the game's alert-type count. The runtime rejects the epoch
    /// with this typed error (and the supervisor quarantines the tenant)
    /// instead of panicking mid-stream.
    MalformedStream {
        /// Zero-based period index of the offending row.
        period: usize,
        /// Expected row arity (the game's alert-type count).
        expected: usize,
        /// Observed row arity.
        got: usize,
    },
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GameError::InvalidSpec(msg) => write!(f, "invalid game specification: {msg}"),
            GameError::Lp(e) => write!(f, "LP solve failed: {e}"),
            GameError::InvalidConfig(msg) => write!(f, "invalid solver configuration: {msg}"),
            GameError::UnknownScenario { key, known } => write!(
                f,
                "unknown scenario '{key}'; registered scenarios: {}",
                known.join(", ")
            ),
            GameError::Persist(e) => write!(f, "snapshot persistence failed: {e}"),
            GameError::MalformedStream {
                period,
                expected,
                got,
            } => write!(
                f,
                "malformed alert stream: period {period} carries {got} counts \
                 but the game has {expected} alert types"
            ),
        }
    }
}

impl std::error::Error for GameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GameError::Lp(e) => Some(e),
            GameError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LpError> for GameError {
    fn from(e: LpError) -> Self {
        GameError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: GameError = LpError::Unbounded { column: 1 }.into();
        assert!(e.to_string().contains("unbounded"));
        assert!(GameError::InvalidSpec("x".into()).to_string().contains("x"));
        assert!(GameError::InvalidConfig("y".into())
            .to_string()
            .contains("y"));
    }
}
