//! creditsim — a synthetic credit-application dataset (the Rea B substitute).
//!
//! Rea B in the paper is the UCI Statlog (German Credit Data) set: 1000
//! applications, 20 attributes, with 5 alert types defined over attribute
//! combinations and the 8 application *purposes* acting as victims
//! (Table IX). This crate synthesizes a schema-compatible stand-in offline:
//!
//! * [`schema`] — the attribute vocabulary (checking-account status, credit
//!   history, purpose, skill level, …) as typed enums;
//! * [`synth`] — a generator for `n` applications whose attribute marginals
//!   are calibrated so that the five Table IX rules fire at the published
//!   rates (370.04/82.42/5.13/28.21/8.31 per 1000 ± their stds per audit
//!   batch);
//! * [`reab`] — assembly of the Rea B game: 100 applicant-attackers × 8
//!   purposes, benefits `[15,15,14,20,18]`, penalty 20, unit costs,
//!   `p_e = 1`, opt-out allowed.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod reab;
pub mod scenario;
pub mod schema;
pub mod synth;

pub use reab::{build_game, ReaBConfig};
pub use scenario::ReaBScenario;
pub use schema::{Application, CheckingStatus, CreditHistory, Purpose, Skill};
pub use synth::{generate_applications, SynthConfig};

/// Table IX: mean alerts per audit batch of 1000 applications.
pub const TABLE9_MEANS: [f64; 5] = [370.04, 82.42, 5.13, 28.21, 8.31];
/// Table IX: standard deviations of per-batch alert counts.
pub const TABLE9_STDS: [f64; 5] = [15.81, 7.87, 2.08, 5.25, 2.96];
/// Table IX alert-type names.
pub const TABLE9_NAMES: [&str; 5] = [
    "No checking account, Any purpose",
    "Checking < 0, New car, Education",
    "Checking > 0, Unskilled, Education",
    "Checking > 0, Unskilled, Appliance",
    "Checking > 0, Critical account, Business",
];
/// Section V.A (Rea B): adversary benefit per alert type.
pub const REA_B_BENEFITS: [f64; 5] = [15.0, 15.0, 14.0, 20.0, 18.0];
/// Rea B: penalty for detection.
pub const REA_B_PENALTY: f64 = 20.0;
/// Rea B: cost of an attack and of an audit.
pub const REA_B_UNIT_COST: f64 = 1.0;
