//! Seeded game fuzzer: solver-independent properties over randomly
//! generated (but bit-reproducible) games from `audit_game::fuzz`.
//!
//! Unlike `game_properties.rs` (proptest over the `random_game` dataset
//! generator), this suite drives the dedicated fuzzer — a wider zoo of
//! count distributions, stochastic footprints, benign actions, and
//! randomized opt-out — through the strategic-attacker machinery the
//! scenario families exercise: quantal-response convergence, general-sum
//! vs zero-sum agreement, budget monotonicity, and the CGGS-vs-brute-force
//! gold standard at small scale.
//!
//! The case count is `FUZZ_CASES` (default 40); CI runs 120 in release
//! mode with the same fixed seed range, so a CI failure names a seed that
//! reproduces identically on any machine.

use alert_audit::game::brute_force::solve_brute_force;
use alert_audit::game::cggs::{Cggs, CggsConfig};
use alert_audit::game::detection::{DetectionEstimator, DetectionModel};
use alert_audit::game::fuzz::{fuzz_game, FuzzConfig};
use alert_audit::game::general_sum::{damage_under_mixture, DamageModel};
use alert_audit::game::master::MasterSolver;
use alert_audit::game::ordering::AuditOrder;
use alert_audit::game::payoff::PayoffMatrix;
use alert_audit::game::planner::{decomposed_pool, TypeClusters, DEFAULT_CLUSTER_SIZE};
use alert_audit::game::quantal::QuantalResponse;
use alert_audit::game::solver::{InnerKind, OapSolver, SolverConfig};

fn cases() -> u64 {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

/// The same `(config, seed)` pair must always produce the same game, and
/// every fuzzed game must pass structural validation.
#[test]
fn fuzzed_games_are_deterministic_and_valid() {
    let cfg = FuzzConfig::default();
    for seed in 0..cases() {
        let a = fuzz_game(&cfg, seed);
        let b = fuzz_game(&cfg, seed);
        assert_eq!(a.fingerprint(), b.fingerprint(), "seed {seed} not stable");
        a.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// At any fixed policy, the auditor's QR loss is non-decreasing in λ
/// (dE/dλ is the choice-distribution variance of the utilities), never
/// exceeds the rational best-response envelope, and converges to it as
/// λ → ∞.
#[test]
fn qr_loss_is_monotone_in_lambda_and_converges_to_best_response() {
    let cfg = FuzzConfig::default();
    for seed in 0..cases() {
        let spec = fuzz_game(&cfg, seed);
        let bank = spec.sample_bank(24, seed);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let orders = AuditOrder::enumerate_all(spec.n_types());
        let thresholds = spec.threshold_upper_bounds();
        let n_orders = orders.len();
        let matrix = PayoffMatrix::build(&spec, &est, orders, &thresholds);
        let p = vec![1.0 / n_orders as f64; n_orders];
        let rational = matrix.loss_under_mixture(&spec, &p);

        let mut prev = f64::NEG_INFINITY;
        for lambda in [0.0, 0.5, 1.0, 2.0, 8.0] {
            let loss = QuantalResponse::new(lambda).loss_under_mixture(&spec, &matrix, &p);
            assert!(
                loss >= prev - 1e-9,
                "seed {seed}: QR loss dropped from {prev} to {loss} at lambda {lambda}"
            );
            assert!(
                loss <= rational + 1e-9,
                "seed {seed}: QR loss {loss} above rational envelope {rational}"
            );
            prev = loss;
        }
        let sharp = QuantalResponse::new(1e4).loss_under_mixture(&spec, &matrix, &p);
        assert!(
            (sharp - rational).abs() <= 2e-3 * rational.abs().max(1.0),
            "seed {seed}: sharp QR {sharp} did not converge to rational {rational}"
        );
    }
}

/// With free attacks (`K = 0`) and the identity damage model, the
/// general-sum auditor damage coincides with the zero-sum loss — the
/// attacker's utility `(1-Pat)·R - Pat·M` is exactly the auditor's damage.
/// Detection is linear in Pal, so this holds for stochastic footprints too.
#[test]
fn general_sum_damage_equals_zero_sum_loss_when_attacks_are_free() {
    let cfg = FuzzConfig::default();
    for seed in 0..cases() {
        let mut spec = fuzz_game(&cfg, seed);
        for att in &mut spec.attackers {
            for a in &mut att.actions {
                a.attack_cost = 0.0;
            }
        }
        let bank = spec.sample_bank(24, seed ^ 0x65);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let orders = AuditOrder::enumerate_all(spec.n_types());
        let thresholds = spec.threshold_upper_bounds();
        let matrix = PayoffMatrix::build(&spec, &est, orders, &thresholds);
        let master = MasterSolver::solve(&spec, &matrix).unwrap();
        let zero_sum = matrix.loss_under_mixture(&spec, &master.p_orders);
        let damage =
            damage_under_mixture(&spec, &matrix, &master.p_orders, &DamageModel::default());
        assert!(
            (damage - zero_sum).abs() <= 1e-9 * zero_sum.abs().max(1.0),
            "seed {seed}: general-sum {damage} vs zero-sum {zero_sum}"
        );
    }
}

/// Raising the budget (same game, same sample bank) can only help the
/// auditor: the master value at full-coverage thresholds is non-increasing.
#[test]
fn value_is_monotone_in_budget_on_fuzzed_games() {
    let cfg = FuzzConfig::default();
    for seed in 0..cases() {
        let mut spec = fuzz_game(&cfg, seed);
        let bank = spec.sample_bank(24, 99);
        let orders = AuditOrder::enumerate_all(spec.n_types());
        let thresholds = spec.threshold_upper_bounds();
        let mut prev = f64::INFINITY;
        for budget in [1.0, 2.0, 4.0, 8.0] {
            spec.budget = budget;
            let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
            let matrix = PayoffMatrix::build(&spec, &est, orders.clone(), &thresholds);
            let v = MasterSolver::solve(&spec, &matrix).unwrap().value;
            assert!(
                v <= prev + 1e-6,
                "seed {seed}: value rose to {v} from {prev} at budget {budget}"
            );
            prev = v;
        }
    }
}

/// On brute-force-tractable fuzzed games, column generation at the exact
/// optimal thresholds must bracket the exhaustive master value: the
/// default greedy oracle is never *below* it (restricting the column set
/// can only hurt the auditor), and CGGS seeded with the full order set
/// must reproduce it exactly — any gap there would be a bookkeeping bug
/// in the restricted master, not oracle luck.
#[test]
fn cggs_agrees_with_brute_force_on_small_fuzzed_games() {
    let cfg = FuzzConfig {
        max_types: 2,
        max_attackers: 3,
        max_victims: 3,
        max_support: 4,
        ..Default::default()
    };
    for seed in 0..cases() {
        let spec = fuzz_game(&cfg, seed);
        let bank = spec.sample_bank(40, seed);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let orders = AuditOrder::enumerate_all(spec.n_types());
        let bf = solve_brute_force(&spec, &est, &orders).unwrap();
        let greedy = Cggs::default().solve(&spec, &est, &bf.thresholds).unwrap();
        assert!(
            greedy.master.value >= bf.value - 1e-7,
            "seed {seed}: CGGS {} below the exhaustive optimum {}",
            greedy.master.value,
            bf.value
        );
        let full = Cggs::new(CggsConfig {
            seed_columns: orders.clone(),
            ..Default::default()
        })
        .solve(&spec, &est, &bf.thresholds)
        .unwrap();
        assert!(
            (full.master.value - bf.value).abs() <= 1e-7,
            "seed {seed}: fully seeded CGGS {} vs brute force {}",
            full.master.value,
            bf.value
        );
    }
}

/// At or below `EXACT_MAX_TYPES`, the forced decomposed inner degrades to
/// exhaustive enumeration and must be **bit-identical** to the exact
/// inner on fuzzed games — not just close: same loss bits, same policy,
/// same exploration counts.
#[test]
fn decomposed_inner_is_bit_identical_to_exact_on_fuzzed_small_games() {
    let cfg = FuzzConfig::default(); // 2–4 types: always on the exhaustive path
    for seed in 0..cases().min(16) {
        let spec = fuzz_game(&cfg, seed);
        let solve = |inner: InnerKind| {
            OapSolver::new(SolverConfig {
                epsilon: 0.5,
                n_samples: 24,
                seed,
                inner,
                ..Default::default()
            })
            .solve(&spec)
            .unwrap()
        };
        let exact = solve(InnerKind::Exact);
        let dec = solve(InnerKind::Decomposed);
        assert_eq!(
            exact.loss.to_bits(),
            dec.loss.to_bits(),
            "seed {seed}: decomposed loss diverged from exact"
        );
        assert_eq!(
            exact.policy.thresholds, dec.policy.thresholds,
            "seed {seed}"
        );
        assert_eq!(exact.policy.orders, dec.policy.orders, "seed {seed}");
        assert_eq!(exact.policy.probs, dec.policy.probs, "seed {seed}");
        assert_eq!(
            exact.stats.thresholds_explored, dec.stats.thresholds_explored,
            "seed {seed}"
        );
    }
}

/// On wide fuzzed games (16–32 types, where exhaustive enumeration is
/// impossible) the master LP is monotone in the column pool: the value
/// over the union of the decomposed pool and the CGGS-generated columns
/// is at most the value over either pool alone. This brackets the
/// decomposition against column generation without needing an exact
/// baseline at that width.
#[test]
fn decomposed_and_cggs_pools_bracket_their_union_on_wide_games() {
    let cfg = FuzzConfig::wide();
    for seed in 0..cases().min(8) {
        let spec = fuzz_game(&cfg, seed);
        let bank = spec.sample_bank(24, seed);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let thresholds: Vec<f64> = spec
            .threshold_upper_bounds()
            .into_iter()
            .map(|b| b.min(spec.budget))
            .collect();

        let clusters = TypeClusters::build(&spec, DEFAULT_CLUSTER_SIZE);
        let dec_pool = decomposed_pool(&spec, &clusters);
        let value_of = |orders: Vec<AuditOrder>| {
            let matrix = PayoffMatrix::build(&spec, &est, orders, &thresholds);
            MasterSolver::solve(&spec, &matrix).unwrap().value
        };
        let dec_value = value_of(dec_pool.clone());

        let cggs = Cggs::default().solve(&spec, &est, &thresholds).unwrap();
        let cggs_value = cggs.master.value;

        let mut union = dec_pool;
        for o in cggs.orders {
            if !union.contains(&o) {
                union.push(o);
            }
        }
        let union_value = value_of(union);
        assert!(
            union_value <= dec_value + 1e-7,
            "seed {seed}: union {union_value} above decomposed pool {dec_value}"
        );
        assert!(
            union_value <= cggs_value + 1e-7,
            "seed {seed}: union {union_value} above CGGS pool {cggs_value}"
        );
    }
}

/// Budget monotonicity survives the decomposed tier: over the **fixed**
/// decomposed column pool of a wide fuzzed game, the master value at
/// full-coverage thresholds is non-increasing in the budget.
#[test]
fn value_is_monotone_in_budget_over_the_decomposed_pool_on_wide_games() {
    let cfg = FuzzConfig::wide();
    for seed in 0..cases().min(8) {
        let mut spec = fuzz_game(&cfg, seed);
        let bank = spec.sample_bank(24, 99);
        let clusters = TypeClusters::build(&spec, DEFAULT_CLUSTER_SIZE);
        let pool = decomposed_pool(&spec, &clusters);
        let thresholds = spec.threshold_upper_bounds();
        let mut prev = f64::INFINITY;
        for budget in [2.0, 4.0, 8.0, 16.0] {
            spec.budget = budget;
            let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
            let matrix = PayoffMatrix::build(&spec, &est, pool.clone(), &thresholds);
            let v = MasterSolver::solve(&spec, &matrix).unwrap().value;
            assert!(
                v <= prev + 1e-6,
                "seed {seed}: value rose to {v} from {prev} at budget {budget}"
            );
            prev = v;
        }
    }
}
