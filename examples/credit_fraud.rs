//! Credit-application fraud-audit scenario (the paper's Rea B use case):
//! synthesize an application portfolio, define screening alerts, and find
//! the budget at which strategic applicants are fully deterred.
//!
//! ```text
//! cargo run --release --example credit_fraud
//! ```

use alert_audit::game::cggs::CggsConfig;
use alert_audit::game::detection::{DetectionEstimator, DetectionModel};
use alert_audit::game::ishm::{CggsEvaluator, Ishm, IshmConfig};

fn main() {
    // Resolve the Rea B scenario from the registry (synthesizes the
    // application portfolio and fits F_t from historical batches).
    let registry = alert_audit::scenario::registry();
    let scenario = registry.get("credit-reab").expect("registered").clone();
    let base_spec = scenario.build(17).expect("Rea B builds");

    println!("fitted alert-count models (cf. paper Table IX):");
    for (t, d) in base_spec.distributions.iter().enumerate() {
        println!(
            "  {:<45} mean {:>7.2}",
            base_spec.alert_types[t].name,
            d.mean()
        );
    }

    // Sweep the audit budget until every applicant prefers honesty.
    println!("\nbudget sweep (loss 0 = complete deterrence):");
    let working = base_spec.dedup_actions();
    for budget in [20.0, 60.0, 100.0, 140.0, 180.0, 220.0, 260.0] {
        let mut spec = working.clone();
        spec.budget = budget;
        let bank = spec.sample_bank(300, 5);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let ishm = Ishm::new(IshmConfig {
            epsilon: 0.2,
            ..Default::default()
        });
        let mut eval = CggsEvaluator::new(&spec, est, CggsConfig::default());
        let outcome = ishm.solve(&spec, &mut eval).expect("solves");
        let deterred = outcome
            .master
            .u_attackers
            .iter()
            .filter(|&&u| u <= 1e-6)
            .count();
        println!(
            "  B = {budget:>5}: loss {:>9.2}, {deterred:>3}/100 applicants deterred",
            outcome.value
        );
        if outcome.value <= 1e-6 {
            println!("  → full deterrence reached at budget {budget}");
            break;
        }
    }
}
