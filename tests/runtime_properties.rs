//! Property net for the online runtime and its warm-start seams:
//!
//! * an **empty** warm start (no thresholds, no seed columns) is
//!   bit-identical to a cold solve on every registry scenario — the seams
//!   cannot perturb the solvers when unused;
//! * the service epoch loop is rerun- and thread-count-deterministic
//!   (telemetry fingerprints match bit for bit);
//! * on the drifting `syn-seasonal` scenario the warm-started re-solves
//!   match or beat the shadow cold solves' objectives while exploring no
//!   more threshold candidates in aggregate — the deterministic half of
//!   the "warm is cheaper" claim (wall-clock is benchmarked in
//!   `runtime_resolve` and recorded in `BENCH_runtime.json`).

use alert_audit::prelude::*;
use alert_audit::runtime::{AuditService, DriftConfig, RuntimeConfig};
use alert_audit::scenario::registry;

fn solver_for(scenario: &dyn Scenario, inner: InnerKind) -> OapSolver {
    OapSolver::new(SolverConfig {
        epsilon: scenario.suggested_epsilon(),
        n_samples: 40,
        seed: scenario.default_seed(),
        inner,
        ..Default::default()
    })
}

#[test]
fn empty_warm_start_is_bit_identical_on_every_registry_scenario() {
    let reg = registry();
    for sc in reg.iter() {
        let spec = sc.build_small(sc.default_seed()).unwrap();
        // Auto lets the planner pick the tier; pin a second inner
        // explicitly as well so the seed-column seam is exercised on every
        // scenario. Past the full-ISHM gate that second inner must be
        // Decomposed — forcing CGGS there would run the un-capped outer
        // search, which needs ~2^|T| evaluations to prove termination.
        let forced = if spec.n_types() > ISHM_FULL_MAX_TYPES {
            InnerKind::Decomposed
        } else {
            InnerKind::Cggs
        };
        for inner in [InnerKind::Auto, forced] {
            let solver = solver_for(sc.as_ref(), inner);
            let cold = solver.solve(&spec).unwrap();
            let warm = solver
                .solve_warm(&spec, Some(&WarmStart::default()))
                .unwrap();
            assert_eq!(
                cold.loss.to_bits(),
                warm.loss.to_bits(),
                "{} ({inner:?}): empty warm start changed the objective",
                sc.key()
            );
            assert_eq!(
                cold.policy.thresholds,
                warm.policy.thresholds,
                "{}",
                sc.key()
            );
            assert_eq!(cold.policy.orders, warm.policy.orders, "{}", sc.key());
            assert_eq!(cold.policy.probs, warm.policy.probs, "{}", sc.key());
            assert_eq!(
                cold.stats.thresholds_explored,
                warm.stats.thresholds_explored,
                "{}",
                sc.key()
            );
        }
    }
}

fn seasonal_config(threads: usize, compare_cold: bool) -> RuntimeConfig {
    RuntimeConfig {
        epochs: 20,
        periods_per_epoch: 5,
        seed: 0,
        solver: SolverConfig {
            inner: InnerKind::Cggs,
            n_samples: 100,
            epsilon: 0.25,
            threads,
            ..Default::default()
        },
        drift: DriftConfig::default(),
        warm_start: true,
        compare_cold,
    }
}

fn run_seasonal(cfg: RuntimeConfig) -> alert_audit::runtime::RuntimeReport {
    let reg = registry();
    let sc = reg.get("syn-seasonal").unwrap().clone();
    AuditService::new(sc, cfg).run().unwrap()
}

#[test]
fn epoch_loop_is_rerun_deterministic() {
    let a = run_seasonal(seasonal_config(1, false));
    let b = run_seasonal(seasonal_config(1, false));
    assert_eq!(a.fingerprint(), b.fingerprint());
    // The fingerprint covers the full log; spot-check the visible fields
    // agree too, so a fingerprint bug cannot silently mask divergence.
    assert_eq!(a.resolves(), b.resolves());
    assert_eq!(a.initial_objective.to_bits(), b.initial_objective.to_bits());
}

#[test]
fn epoch_loop_is_thread_count_deterministic() {
    let base = run_seasonal(seasonal_config(1, false));
    for threads in [2usize, 4] {
        let multi = run_seasonal(seasonal_config(threads, false));
        assert_eq!(
            base.fingerprint(),
            multi.fingerprint(),
            "thread count {threads} changed the telemetry"
        );
    }
}

#[test]
fn seasonal_drift_warm_resolves_match_cold_objectives_with_less_search() {
    let report = run_seasonal(seasonal_config(1, true));
    assert!(
        report.resolves() >= 1,
        "the drifting scenario never re-solved in {} epochs",
        report.epochs.len()
    );
    let mut warm_explored = 0usize;
    let mut cold_explored = 0usize;
    for e in report.epochs.iter().filter(|e| e.resolved) {
        let cold = e.cold_objective.expect("shadow cold solve recorded");
        assert!(
            e.objective <= cold + 1e-9,
            "epoch {}: warm {} worse than cold {}",
            e.epoch,
            e.objective,
            cold
        );
        warm_explored += e.solve_explored.expect("explored recorded");
        cold_explored += e.cold_explored.expect("cold explored recorded");
    }
    assert!(
        warm_explored <= cold_explored,
        "warm re-solves explored more in aggregate: {warm_explored} vs {cold_explored}"
    );
}
