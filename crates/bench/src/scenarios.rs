//! Scenario resolution for the `exp_*` binaries.
//!
//! Every experiment driver accepts a `--scenario <key>` flag (anywhere on
//! the command line) selecting a registry scenario as the base game; the
//! remaining positional arguments keep their historical meaning. This
//! module extracts the flag, resolves the key against the full
//! cross-crate registry, and offers the quick registry-wide sweep that
//! `exp_all` runs.

use crate::report::{f4, Table};
use alert_audit::scenario::{registry, Scenario};
use audit_game::error::GameError;
use audit_game::model::GameSpec;
use audit_game::solver::{OapSolver, SolverConfig};
use std::sync::Arc;

pub use crate::cli::take_scenario_flag;

/// Resolve a scenario key (defaulting when the flag was absent) and build
/// its full-scale game at `seed`. Exits with the known-key list on an
/// unknown key.
pub fn resolve_base_spec(key: Option<String>, default_key: &str, seed: u64) -> (String, GameSpec) {
    let key = key.unwrap_or_else(|| default_key.to_string());
    let reg = registry();
    let scenario = reg.resolve(&key).unwrap_or_else(|e| panic!("{e}")).clone();
    let spec = scenario
        .build(seed)
        .unwrap_or_else(|e| panic!("scenario '{key}' failed to build: {e}"));
    eprintln!("scenario {key}: {}", scenario.describe());
    (key, spec)
}

/// One row of the registry sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Registry key.
    pub key: String,
    /// Substrate that generated the workload.
    pub source: String,
    /// `|T|`, `|E|`, and total actions of the solved (small) game.
    pub shape: (usize, usize, usize),
    /// Budget the scenario ships with.
    pub budget: f64,
    /// ISHM+CGGS loss at the scenario's suggested ε.
    pub loss: f64,
}

/// Solve every registry scenario at conformance scale with ISHM+CGGS —
/// the "does every workload still flow end to end" sweep of `exp_all`.
pub fn registry_sweep(n_samples: usize, threads: usize) -> Result<Vec<SweepRow>, GameError> {
    let reg = registry();
    let scenarios: Vec<Arc<dyn Scenario>> = reg.iter().cloned().collect();
    let mut rows = Vec::with_capacity(scenarios.len());
    for sc in scenarios {
        let spec = sc.build_small(sc.default_seed())?;
        let solution = OapSolver::new(SolverConfig {
            epsilon: sc.suggested_epsilon(),
            n_samples,
            seed: sc.default_seed(),
            threads,
            ..Default::default()
        })
        .solve(&spec)?;
        rows.push(SweepRow {
            key: sc.key().to_string(),
            source: sc.source().to_string(),
            shape: (spec.n_types(), spec.n_attackers(), spec.n_actions()),
            budget: spec.budget,
            loss: solution.loss,
        });
    }
    Ok(rows)
}

/// Render the sweep as a table.
pub fn render_sweep(rows: &[SweepRow]) -> String {
    let mut t = Table::new(vec![
        "scenario", "source", "|T|", "|E|", "actions", "B", "loss",
    ]);
    for r in rows {
        t.row(vec![
            r.key.clone(),
            r.source.clone(),
            format!("{}", r.shape.0),
            format!("{}", r.shape.1),
            format!("{}", r.shape.2),
            format!("{}", r.budget),
            f4(r.loss),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_extraction_handles_both_spellings() {
        let mut args = vec!["2,4".to_string(), "--scenario".into(), "syn-a".into()];
        assert_eq!(take_scenario_flag(&mut args).as_deref(), Some("syn-a"));
        assert_eq!(args, vec!["2,4".to_string()]);

        let mut args = vec!["--scenario=emr-reaa".to_string(), "40".into()];
        assert_eq!(take_scenario_flag(&mut args).as_deref(), Some("emr-reaa"));
        assert_eq!(args, vec!["40".to_string()]);

        let mut args = vec!["40".to_string()];
        assert_eq!(take_scenario_flag(&mut args), None);
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn default_key_is_used_when_flag_absent() {
        let (key, spec) = resolve_base_spec(None, "syn-a", 0);
        assert_eq!(key, "syn-a");
        assert_eq!(spec.n_types(), 4);
    }

    #[test]
    #[should_panic]
    fn unknown_key_panics_with_known_list() {
        resolve_base_spec(Some("not-a-scenario".into()), "syn-a", 0);
    }
}
