//! Offline shim for `bytes` 1.x.
//!
//! Provides the subset the workspace's binary framing uses: [`BytesMut`]
//! with big-endian `put_*` writers and `freeze`, cheaply cloneable [`Bytes`]
//! views with big-endian `get_*` cursor reads and `slice`, and the
//! [`Buf`] / [`BufMut`] traits those methods live on. Semantics (panics on
//! underflow, network byte order, zero-copy slicing) match the real crate.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Read cursor over a byte buffer (shim for `bytes::Buf`).
pub trait Buf {
    /// Bytes left between the cursor and the end.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advance the cursor; panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Read a big-endian `u32`, advancing 4 bytes. Panics on underflow.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Read a big-endian `u64`, advancing 8 bytes. Panics on underflow.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Read one byte. Panics on underflow.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }
}

/// Append-only byte writer (shim for `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Append one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }
}

/// Immutable, cheaply cloneable byte buffer with a read cursor
/// (shim for `bytes::Bytes`).
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap a static byte slice (copies under the shim; the real crate is
    /// zero-copy here, which nothing in the workspace depends on).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zero-copy sub-view of the unread bytes; panics on out-of-range.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The unread bytes as a plain slice.
    pub fn as_ref_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref_slice() == other.as_ref_slice()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

/// Growable byte buffer (shim for `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(capacity),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u64(0x0102_0304_0506_0708);
        w.put_u32(0xAABB_CCDD);
        w.put_u8(0x7F);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 13);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.get_u32(), 0xAABB_CCDD);
        assert_eq!(r.get_u8(), 0x7F);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_is_a_view() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(mid.as_ref_slice(), &[2, 3, 4]);
        let tail = mid.slice(1..);
        assert_eq!(tail.as_ref_slice(), &[3, 4]);
        assert_eq!(b.len(), 6, "parent untouched");
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        b.advance(3);
    }

    #[test]
    fn from_static_and_eq() {
        let a = Bytes::from_static(b"xyz");
        let b = Bytes::from(b"xyz".to_vec());
        assert_eq!(a, b);
        assert!(Bytes::new().is_empty());
    }
}
