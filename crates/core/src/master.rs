//! The zero-sum master LP (paper eq. 5 with `b` fixed).
//!
//! The paper's formulation has one variable `p_o` per ordering and one
//! constraint per attack `⟨e,v⟩`:
//!
//! ```text
//! min Σ_e p_e·u_e   s.t.  ∀⟨e,v⟩:  u_e ≥ Σ_o p_o·U_a(o,b,⟨e,v⟩),
//!                         Σ_o p_o = 1,  p ≥ 0.
//! ```
//!
//! With thousands of `⟨e,v⟩` rows and a handful of columns, the simplex
//! tableau of that orientation is needlessly tall. We therefore solve the
//! **attacker-mixture orientation** (its LP dual):
//!
//! ```text
//! max μ   s.t.  ∀e: Σ_v y_ev (= | ≤) p_e,
//!               ∀o ∈ Q: μ ≤ Σ_ev y_ev·U_a(o,b,⟨e,v⟩),   y ≥ 0,
//! ```
//!
//! whose tableau has only `|E| + |Q|` rows (`≤` when opting out is allowed —
//! the slack is the probability of refraining). By strong duality the two
//! orientations have equal value; the auditor's mixture `p_o` is recovered
//! from the duals of the per-order rows, and `u_e` from the duals of the
//! per-attacker rows. The attacker mixture `y` is exactly the `π_Q` that
//! CGGS prices candidate columns against (Algorithm 1, line 3).

use crate::error::GameError;
use crate::model::GameSpec;
use crate::payoff::PayoffMatrix;
use lp_solver::{Problem, Relation, Sense};
use serde::{Deserialize, Serialize};

/// Solution of the master problem for a fixed threshold vector and a fixed
/// set of candidate orders `Q`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MasterSolution {
    /// Game value: the auditor's minimized loss `Σ_e p_e·u_e`.
    pub value: f64,
    /// Auditor's mixed strategy over the order columns of `Q`.
    pub p_orders: Vec<f64>,
    /// Best-response utility `u_e` per attacker.
    pub u_attackers: Vec<f64>,
    /// Attacker mixture `y_ev` (flat action indexing; sums to at most `p_e`
    /// per attacker, with slack = deterrence probability).
    pub y_actions: Vec<f64>,
    /// Simplex pivots spent.
    pub lp_iterations: usize,
}

/// Solver for master problems. Stateless; configuration lives in the
/// payoff matrix and spec.
#[derive(Debug, Clone, Copy, Default)]
pub struct MasterSolver;

impl MasterSolver {
    /// Solve in the attacker-mixture orientation (the production path).
    pub fn solve(spec: &GameSpec, matrix: &PayoffMatrix) -> Result<MasterSolution, GameError> {
        if matrix.n_orders() == 0 {
            return Err(GameError::InvalidConfig(
                "master problem needs at least one candidate order".into(),
            ));
        }
        let mut lp = Problem::new(Sense::Maximize);
        let mu = lp.add_free_var("mu", 1.0);
        let n_actions = matrix.index.n_actions();
        let ys: Vec<_> = (0..n_actions)
            .map(|i| lp.add_var(format!("y{i}"), 0.0, 0.0, f64::INFINITY))
            .collect();

        // Per-attacker mass constraints. Attackers without actions are
        // vacuous (they contribute u_e = 0 when opting out is allowed; with
        // no actions there is nothing they can do either way).
        let rel = if spec.allow_opt_out {
            Relation::Le
        } else {
            Relation::Eq
        };
        let mut attacker_rows = Vec::with_capacity(spec.n_attackers());
        for (e, att) in spec.attackers.iter().enumerate() {
            if att.actions.is_empty() {
                attacker_rows.push(None);
                continue;
            }
            let terms: Vec<_> = matrix.index.range(e).map(|i| (ys[i], 1.0)).collect();
            let row = lp.add_constraint(format!("mass_e{e}"), terms, rel, att.attack_prob);
            attacker_rows.push(Some(row));
        }

        // Per-order value constraints: μ − Σ y·U_a(o) ≤ 0.
        let mut order_rows = Vec::with_capacity(matrix.n_orders());
        for (col, values) in matrix.values.iter().enumerate() {
            let mut terms = Vec::with_capacity(n_actions + 1);
            terms.push((mu, 1.0));
            for (i, &u) in values.iter().enumerate() {
                if u != 0.0 {
                    terms.push((ys[i], -u));
                }
            }
            order_rows.push(lp.add_constraint(format!("order{col}"), terms, Relation::Le, 0.0));
        }

        let sol = lp.solve()?;
        let p_orders: Vec<f64> = order_rows.iter().map(|&r| sol.dual(r).max(0.0)).collect();
        let u_attackers: Vec<f64> = attacker_rows
            .iter()
            .map(|r| r.map(|row| sol.dual(row)).unwrap_or(0.0))
            .collect();
        let y_actions: Vec<f64> = ys.iter().map(|&y| sol.value(y)).collect();

        Ok(MasterSolution {
            value: sol.objective,
            p_orders: normalize_simplex(p_orders),
            u_attackers,
            y_actions,
            lp_iterations: sol.iterations,
        })
    }

    /// Solve in the paper's primal orientation (eq. 5). Exponentially
    /// taller tableau; kept as an independently-coded cross-check used by
    /// tests and the `cggs_vs_exact` benchmark.
    pub fn solve_primal(
        spec: &GameSpec,
        matrix: &PayoffMatrix,
    ) -> Result<MasterSolution, GameError> {
        if matrix.n_orders() == 0 {
            return Err(GameError::InvalidConfig(
                "master problem needs at least one candidate order".into(),
            ));
        }
        let mut lp = Problem::new(Sense::Minimize);
        let ps: Vec<_> = (0..matrix.n_orders())
            .map(|o| lp.add_var(format!("p{o}"), 0.0, 0.0, 1.0))
            .collect();
        let us: Vec<_> = spec
            .attackers
            .iter()
            .enumerate()
            .map(|(e, att)| {
                let lo = if spec.allow_opt_out {
                    0.0
                } else {
                    f64::NEG_INFINITY
                };
                lp.add_var(format!("u{e}"), att.attack_prob, lo, f64::INFINITY)
            })
            .collect();

        let mut action_rows = Vec::with_capacity(matrix.index.n_actions());
        for (e, _att) in spec.attackers.iter().enumerate() {
            for i in matrix.index.range(e) {
                let mut terms = vec![(us[e], -1.0)];
                for (col, &p) in ps.iter().enumerate() {
                    let u = matrix.values[col][i];
                    if u != 0.0 {
                        terms.push((p, u));
                    }
                }
                action_rows.push(lp.add_constraint(
                    format!("br_e{e}_a{i}"),
                    terms,
                    Relation::Le,
                    0.0,
                ));
            }
        }
        lp.add_constraint(
            "simplex",
            ps.iter().map(|&p| (p, 1.0)).collect(),
            Relation::Eq,
            1.0,
        );
        // Attackers with no actions and no opt-out: pin u_e = 0 so the free
        // variable cannot drive the objective to −∞.
        for (e, att) in spec.attackers.iter().enumerate() {
            if att.actions.is_empty() && !spec.allow_opt_out {
                lp.add_constraint(format!("pin_u{e}"), vec![(us[e], 1.0)], Relation::Eq, 0.0);
            }
        }

        let sol = lp.solve()?;
        let p_orders: Vec<f64> = ps.iter().map(|&p| sol.value(p).max(0.0)).collect();
        let u_attackers: Vec<f64> = us.iter().map(|&u| sol.value(u)).collect();
        // Attacker mixture from duals of the best-response rows; the sign
        // convention of shadow prices for a min/Le problem makes them ≤ 0,
        // and |dual| carries the mass p_e·(probability of action).
        let y_actions: Vec<f64> = action_rows.iter().map(|&r| sol.dual(r).abs()).collect();

        Ok(MasterSolution {
            value: sol.objective,
            p_orders: normalize_simplex(p_orders),
            u_attackers,
            y_actions,
            lp_iterations: sol.iterations,
        })
    }
}

/// Clamp tiny negative entries and renormalize a probability vector.
fn normalize_simplex(mut p: Vec<f64>) -> Vec<f64> {
    for x in &mut p {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
    let total: f64 = p.iter().sum();
    if total > 0.0 {
        for x in &mut p {
            *x /= total;
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::{DetectionEstimator, DetectionModel};
    use crate::model::{AttackAction, Attacker, GameSpecBuilder};
    use crate::ordering::AuditOrder;
    use std::sync::Arc;
    use stochastics::Constant;

    /// Matching-pennies game: one attacker chooses which of two types to
    /// trigger; the budget covers only the first-audited type. The unique
    /// equilibrium randomizes the order 50/50.
    fn pennies(opt_out: bool) -> GameSpec {
        let mut b = GameSpecBuilder::new();
        let t0 = b.alert_type("t0", 1.0, Arc::new(Constant(1)));
        let t1 = b.alert_type("t1", 1.0, Arc::new(Constant(1)));
        b.attacker(Attacker::new(
            "e0",
            1.0,
            vec![
                AttackAction::deterministic("v0", t0, 10.0, 0.0, 10.0),
                AttackAction::deterministic("v1", t1, 10.0, 0.0, 10.0),
            ],
        ));
        b.budget(1.0);
        b.allow_opt_out(opt_out);
        b.build().unwrap()
    }

    fn solve_both(spec: &GameSpec) -> (MasterSolution, MasterSolution) {
        let bank = spec.sample_bank(4, 0);
        let est = DetectionEstimator::new(spec, &bank, DetectionModel::PaperApprox);
        let orders = AuditOrder::enumerate_all(2);
        let m = PayoffMatrix::build(spec, &est, orders, &[1.0, 1.0]);
        let dual = MasterSolver::solve(spec, &m).unwrap();
        let primal = MasterSolver::solve_primal(spec, &m).unwrap();
        (dual, primal)
    }

    #[test]
    fn pennies_without_opt_out() {
        let spec = pennies(false);
        let (dual, primal) = solve_both(&spec);
        // Each attacker is audited with prob 1/2: U = ½(−10) + ½(10) = 0,
        // total loss 0.
        assert!((dual.value - 0.0).abs() < 1e-7, "value {}", dual.value);
        assert!((primal.value - dual.value).abs() < 1e-7);
        // Mixture ~50/50.
        for &p in &dual.p_orders {
            assert!((p - 0.5).abs() < 1e-6, "p = {p}");
        }
        for &p in &primal.p_orders {
            assert!((p - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn pennies_with_opt_out_deters() {
        let spec = pennies(true);
        let (dual, primal) = solve_both(&spec);
        // With opt-out the value stays 0 (attackers indifferent), and u_e=0.
        assert!(dual.value.abs() < 1e-7);
        assert!((primal.value - dual.value).abs() < 1e-7);
        for &u in &dual.u_attackers {
            assert!(u.abs() < 1e-7);
        }
    }

    #[test]
    fn asymmetric_game_orientations_agree() {
        // Make the game asymmetric: type-0 attacker is juicier.
        let mut b = GameSpecBuilder::new();
        let t0 = b.alert_type("t0", 1.0, Arc::new(Constant(1)));
        let t1 = b.alert_type("t1", 1.0, Arc::new(Constant(1)));
        b.attacker(Attacker::new(
            "e0",
            1.0,
            vec![AttackAction::deterministic("v0", t0, 12.0, 1.0, 4.0)],
        ));
        b.attacker(Attacker::new(
            "e1",
            0.7,
            vec![
                AttackAction::deterministic("v1", t1, 6.0, 1.0, 4.0),
                AttackAction::deterministic("v0", t0, 5.0, 1.0, 4.0),
            ],
        ));
        b.budget(1.0);
        let spec = b.build().unwrap();
        let (dual, primal) = solve_both(&spec);
        assert!(
            (dual.value - primal.value).abs() < 1e-6,
            "dual {} vs primal {}",
            dual.value,
            primal.value
        );
        // Mixtures may differ at degenerate optima, but the realized loss
        // of each mixture (best-responding attackers) must equal the value.
        let bank = spec.sample_bank(4, 0);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let m = PayoffMatrix::build(&spec, &est, AuditOrder::enumerate_all(2), &[1.0, 1.0]);
        let loss_dual = m.loss_under_mixture(&spec, &dual.p_orders);
        let loss_primal = m.loss_under_mixture(&spec, &primal.p_orders);
        assert!((loss_dual - dual.value).abs() < 1e-6);
        assert!((loss_primal - primal.value).abs() < 1e-6);
    }

    #[test]
    fn mixture_sums_to_one_and_y_respects_mass() {
        let spec = pennies(false);
        let (dual, _) = solve_both(&spec);
        let sum: f64 = dual.p_orders.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // The attacker's mixture mass equals p_e = 1 (no opt-out).
        let mass: f64 = dual.y_actions.iter().sum();
        assert!((mass - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_order_set_is_rejected() {
        let spec = pennies(false);
        let bank = spec.sample_bank(2, 0);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let m = PayoffMatrix::build(&spec, &est, Vec::new(), &[1.0, 1.0]);
        assert!(MasterSolver::solve(&spec, &m).is_err());
        assert!(MasterSolver::solve_primal(&spec, &m).is_err());
    }

    #[test]
    fn attacker_without_actions_is_neutral() {
        let mut spec = pennies(false);
        spec.attackers.push(Attacker::new("idle", 1.0, vec![]));
        let (dual, primal) = solve_both(&spec);
        assert!((dual.value - primal.value).abs() < 1e-6);
        assert_eq!(dual.u_attackers.len(), 2);
        assert!(dual.u_attackers[1].abs() < 1e-9);
    }
}
