//! The three non-game-theoretic auditing baselines of Section V.B.
//!
//! * **Audit with random orders of alert types** — the auditor keeps solved
//!   thresholds but draws the order uniformly (mimicking ad-hoc,
//!   complaint-driven auditing);
//! * **Audit with random thresholds** — thresholds drawn uniformly (subject
//!   to `Σ b_t ≥ B`), with the auditor still optimizing the order mixture
//!   for each draw;
//! * **Audit based on benefit** — a deterministic greedy auditor that works
//!   through alert types in decreasing order of attacker benefit,
//!   exhausting each type before the next.
//!
//! All baselines are evaluated against *best-responding* attackers, exactly
//! like the proposed policy, so Figures 1–2 compare like with like.

use crate::cggs::Cggs;
use crate::detection::DetectionEstimator;
use crate::error::GameError;
use crate::master::MasterSolver;
use crate::model::GameSpec;
use crate::ordering::AuditOrder;
use crate::payoff::PayoffMatrix;
use rand::seq::SliceRandom;
use rand::Rng;
use stochastics::seeded_rng;

/// Loss of the *uniform-random-order* auditor with fixed thresholds.
///
/// When `|T|! ≤ max_exact_orders` the uniform mixture over **all** orders
/// is evaluated exactly; otherwise `n_sampled` orders are drawn uniformly
/// (the paper samples 2000).
pub fn random_orders_loss(
    spec: &GameSpec,
    est: &DetectionEstimator<'_>,
    thresholds: &[f64],
    n_sampled: usize,
    seed: u64,
) -> Result<f64, GameError> {
    spec.validate()?;
    let n = spec.n_types();
    let factorial: u128 = (1..=n as u128).product();
    let orders: Vec<AuditOrder> = if factorial <= 768 {
        AuditOrder::enumerate_all(n)
    } else {
        let mut rng = seeded_rng(seed);
        let mut perm: Vec<usize> = (0..n).collect();
        (0..n_sampled.max(1))
            .map(|_| {
                perm.shuffle(&mut rng);
                AuditOrder::new(perm.clone()).expect("shuffle preserves permutation")
            })
            .collect()
    };
    let k = orders.len();
    let matrix = PayoffMatrix::build(spec, est, orders, thresholds);
    let uniform = vec![1.0 / k as f64; k];
    Ok(matrix.loss_under_mixture(spec, &uniform))
}

/// Loss of the *random-thresholds* auditor: for each repetition thresholds
/// are drawn uniformly on the integer audit-capacity lattice, rejected
/// until `Σ b_t ≥ min(B, Σ b̄_t)`, and the auditor then plays the optimal
/// order mixture for that draw (solved with CGGS). Returns the mean loss.
pub fn random_thresholds_loss(
    spec: &GameSpec,
    est: &DetectionEstimator<'_>,
    cggs: &Cggs,
    repeats: usize,
    seed: u64,
) -> Result<f64, GameError> {
    spec.validate()?;
    assert!(repeats > 0, "need at least one repetition");
    let caps: Vec<u64> = spec.distributions.iter().map(|d| d.support_max()).collect();
    let costs = spec.audit_costs();
    let max_sum: f64 = caps.iter().zip(&costs).map(|(&k, &c)| k as f64 * c).sum();
    let min_cover = spec.budget.min(max_sum);

    let mut rng = seeded_rng(seed);
    let mut total = 0.0;
    for _ in 0..repeats {
        // Rejection-sample a covering threshold vector (the acceptance rate
        // is high for the budgets of interest; cap the retries defensively).
        let mut thresholds;
        let mut tries = 0;
        loop {
            thresholds = caps
                .iter()
                .zip(&costs)
                .map(|(&k, &c)| rng.gen_range(0..=k) as f64 * c)
                .collect::<Vec<f64>>();
            let sum: f64 = thresholds.iter().sum();
            if sum + 1e-9 >= min_cover {
                break;
            }
            tries += 1;
            if tries > 10_000 {
                // Degenerate geometry: fall back to full coverage.
                thresholds = caps
                    .iter()
                    .zip(&costs)
                    .map(|(&k, &c)| k as f64 * c)
                    .collect();
                break;
            }
        }
        total += cggs.solve(spec, est, &thresholds)?.master.value;
    }
    Ok(total / repeats as f64)
}

/// The deterministic benefit-greedy audit order: types sorted by decreasing
/// attacker benefit, where a type's benefit is the largest reward among
/// actions that can trigger it.
pub fn benefit_order(spec: &GameSpec) -> AuditOrder {
    let n = spec.n_types();
    let mut benefit = vec![f64::NEG_INFINITY; n];
    for att in &spec.attackers {
        for act in &att.actions {
            for &(t, p) in &act.alert_probs {
                if p > 0.0 {
                    benefit[t] = benefit[t].max(act.reward);
                }
            }
        }
    }
    let mut idx: Vec<usize> = (0..n).collect();
    // Stable sort: ties keep type-index order, making the baseline
    // deterministic.
    idx.sort_by(|&a, &b| {
        benefit[b]
            .partial_cmp(&benefit[a])
            .expect("finite benefits")
    });
    AuditOrder::new(idx).expect("sort of a permutation is a permutation")
}

/// Loss of the *audit-based-on-benefit* auditor: the pure benefit-greedy
/// order with full-coverage thresholds (audit as many alerts of the current
/// type as the budget allows before moving on). Attackers observe the pure
/// strategy and best-respond.
pub fn greedy_by_benefit_loss(
    spec: &GameSpec,
    est: &DetectionEstimator<'_>,
) -> Result<f64, GameError> {
    spec.validate()?;
    let order = benefit_order(spec);
    let thresholds = spec.threshold_upper_bounds();
    let matrix = PayoffMatrix::build(spec, est, vec![order], &thresholds);
    Ok(matrix.loss_under_mixture(spec, &[1.0]))
}

/// Convenience: loss of the game-theoretic policy for given thresholds
/// (optimal order mixture via the exact master over `orders`).
pub fn exact_loss_for_thresholds(
    spec: &GameSpec,
    est: &DetectionEstimator<'_>,
    orders: &[AuditOrder],
    thresholds: &[f64],
) -> Result<f64, GameError> {
    let matrix = PayoffMatrix::build(spec, est, orders.to_vec(), thresholds);
    Ok(MasterSolver::solve(spec, &matrix)?.value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::DetectionModel;
    use crate::ishm::{ExactEvaluator, Ishm, IshmConfig};
    use crate::model::{AttackAction, Attacker, GameSpecBuilder};
    use std::sync::Arc;
    use stochastics::Constant;

    fn spec() -> GameSpec {
        let mut b = GameSpecBuilder::new();
        let t0 = b.alert_type("t0", 1.0, Arc::new(Constant(2)));
        let t1 = b.alert_type("t1", 1.0, Arc::new(Constant(2)));
        let t2 = b.alert_type("t2", 1.0, Arc::new(Constant(2)));
        for (i, &(t, r)) in [(t0, 9.0), (t1, 5.0), (t2, 7.0)].iter().enumerate() {
            b.attacker(Attacker::new(
                format!("e{i}"),
                1.0,
                vec![AttackAction::deterministic(format!("v{t}"), t, r, 0.5, 4.0)],
            ));
        }
        b.budget(2.0);
        b.allow_opt_out(true);
        b.build().unwrap()
    }

    #[test]
    fn benefit_order_sorts_by_reward() {
        let s = spec();
        let o = benefit_order(&s);
        assert_eq!(o.types(), &[0, 2, 1]); // rewards 9, 7, 5
    }

    #[test]
    fn proposed_policy_beats_all_baselines() {
        let s = spec();
        let bank = s.sample_bank(64, 9);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);

        let mut eval = ExactEvaluator::new(&s, est);
        let proposed = Ishm::new(IshmConfig {
            epsilon: 0.1,
            ..Default::default()
        })
        .solve(&s, &mut eval)
        .unwrap();

        let rnd_orders = random_orders_loss(&s, &est, &proposed.thresholds, 100, 5).unwrap();
        let rnd_thresholds = random_thresholds_loss(&s, &est, &Cggs::default(), 20, 5).unwrap();
        let greedy = greedy_by_benefit_loss(&s, &est).unwrap();

        assert!(
            proposed.value <= rnd_orders + 1e-7,
            "proposed {} vs random orders {}",
            proposed.value,
            rnd_orders
        );
        assert!(
            proposed.value <= rnd_thresholds + 1e-7,
            "proposed {} vs random thresholds {}",
            proposed.value,
            rnd_thresholds
        );
        assert!(
            proposed.value <= greedy + 1e-7,
            "proposed {} vs greedy {}",
            proposed.value,
            greedy
        );
    }

    #[test]
    fn greedy_baseline_is_exploitable() {
        // A pure, publicly-known order lets the lowest-priority attacker
        // attack with impunity whenever the budget runs out first.
        let s = spec();
        let bank = s.sample_bank(64, 9);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let greedy = greedy_by_benefit_loss(&s, &est).unwrap();
        // Budget 2 covers exactly the two type-0 alerts; types 2 and 1 are
        // never audited → attackers on those types gain R − K.
        assert!(greedy >= (7.0 - 0.5) + (5.0 - 0.5) - 1e-9);
    }

    #[test]
    fn random_orders_deterministic_given_seed() {
        let s = spec();
        let bank = s.sample_bank(64, 9);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let a = random_orders_loss(&s, &est, &[2.0, 2.0, 2.0], 50, 1).unwrap();
        let b = random_orders_loss(&s, &est, &[2.0, 2.0, 2.0], 50, 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn random_thresholds_loss_at_least_optimal() {
        let s = spec();
        let bank = s.sample_bank(64, 9);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let orders = AuditOrder::enumerate_all(3);
        let bf = crate::brute_force::solve_brute_force(&s, &est, &orders).unwrap();
        let rnd = random_thresholds_loss(&s, &est, &Cggs::default(), 10, 2).unwrap();
        assert!(rnd >= bf.value - 1e-7);
    }
}
