//! The shared command-line vocabulary of the `exp_*` binaries.
//!
//! Every experiment driver speaks the same dialect: positional arguments
//! with historical meanings (`[budgets] [samples] [threads]`…), boolean
//! `--flag`s, and value flags accepted as both `--flag <v>` and
//! `--flag=<v>` anywhere on the line. This module is that dialect's
//! single implementation — flag extraction, scenario-key resolution,
//! count/grid parsing, the `AUDIT_THREADS` default, and the
//! `--cache-stats` rendering — so a new binary (e.g. `exp_restart`) gets
//! the whole convention from one import and no binary re-implements a
//! slightly different spelling of it.
//!
//! The historical homes of these helpers ([`crate::defaults`],
//! [`crate::scenarios`]) re-export them, so older import paths keep
//! working.

use alert_audit::scenario::registry;

/// Remove a boolean `--flag` from the CLI argument list, reporting whether
/// it was present.
pub fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

/// Remove a `--flag <value>` or `--flag=<value>` pair from the CLI
/// argument list and return the value, if the flag was present. Panics
/// with usage help when the space-separated form dangles without a value
/// — including the mid-line case where the next token is itself a flag
/// (`exp_online --checkpoint-dir --json` must not silently consume
/// `--json` as the directory). A value that genuinely starts with `--`
/// can always be passed via the `--flag=<value>` spelling.
pub fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        assert!(i + 1 < args.len(), "{flag} needs a value");
        assert!(
            !args[i + 1].starts_with("--"),
            "{flag} needs a value, found flag '{}' instead; \
             use {flag}=<value> if the value really starts with '--'",
            args[i + 1]
        );
        let value = args.remove(i + 1);
        args.remove(i);
        return Some(value);
    }
    let prefix = format!("{flag}=");
    if let Some(i) = args.iter().position(|a| a.starts_with(&prefix)) {
        let value = args[i][prefix.len()..].to_string();
        args.remove(i);
        return Some(value);
    }
    None
}

/// Remove `--scenario <key>` (or `--scenario=<key>`) from `args` and
/// return the key, if present. Panics with the known-key list when the
/// flag is dangling — at the end of the line or mid-line with another
/// flag where the key should be.
pub fn take_scenario_flag(args: &mut Vec<String>) -> Option<String> {
    if let Some(i) = args.iter().position(|a| a == "--scenario") {
        let dangling = args.get(i + 1).map(|a| a.starts_with("--")).unwrap_or(true);
        assert!(
            !dangling,
            "--scenario needs a key; known keys: {}",
            registry().keys().join(", ")
        );
    }
    take_value_flag(args, "--scenario")
}

/// Parse an optional comma-separated CLI argument into a numeric grid,
/// falling back to `default`. Shared `[budgets]`/`[epsilons]` positional
/// handling.
pub fn parse_list(arg: Option<String>, default: &[f64]) -> Vec<f64> {
    arg.map(|s| {
        s.split(',')
            .map(|x| x.parse().expect("numeric list"))
            .collect()
    })
    .unwrap_or_else(|| default.to_vec())
}

/// Parse an optional CLI argument into a positive count, falling back to
/// `default`. Shared `[samples]`/`[threads]` positional handling; see
/// [`positional_count`] for the indexed form.
pub fn parse_count(arg: Option<String>, default: usize) -> usize {
    let n = arg
        .map(|s| s.parse().expect("count is a positive integer"))
        .unwrap_or(default);
    assert!(n >= 1, "count must be at least 1");
    n
}

/// The `idx`-th remaining positional argument as a positive count, falling
/// back to `default` — the `[samples]`/`[threads]` convention in one call
/// (extract the flags first; positional indices count what's left).
pub fn positional_count(args: &[String], idx: usize, default: usize) -> usize {
    parse_count(args.get(idx).cloned(), default)
}

/// Worker threads for batched `Pal` evaluation in the experiment drivers:
/// the `AUDIT_THREADS` environment variable when set (and ≥ 1), else 1.
/// Binaries that expose a `[threads]` CLI argument let it take precedence.
/// Thread count never changes results — only wall-clock time.
pub fn default_threads() -> usize {
    std::env::var("AUDIT_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(1)
}

/// Render the detection-engine counters for `--cache-stats` output: one
/// line for the estimate cache, one for the prefix-state cache and trie
/// evaluator. The `columns_saved` field is the headline — it counts the
/// column passes the prefix-trie/sweep machinery avoided relative to
/// per-query scalar evaluation, so a nonzero value proves the incremental
/// batch path is engaged (the CI perf smoke greps for exactly that).
pub fn render_cache_stats(stats: &audit_game::detection::CacheStats) -> String {
    format!(
        "engine cache: hits={} misses={} entries={} evictions={}\n\
         engine trie: state_hits={} state_entries={} state_evictions={} \
         columns_evaluated={} columns_saved={}",
        stats.hits,
        stats.misses,
        stats.entries,
        stats.evictions,
        stats.state_hits,
        stats.state_entries,
        stats.state_evictions,
        stats.columns_evaluated,
        stats.columns_saved,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_flag_extraction_handles_both_spellings() {
        let mut args = vec!["2,4".to_string(), "--out".into(), "x.json".into()];
        assert_eq!(
            take_value_flag(&mut args, "--out").as_deref(),
            Some("x.json")
        );
        assert_eq!(args, vec!["2,4".to_string()]);

        let mut args = vec!["--out=y.json".to_string(), "40".into()];
        assert_eq!(
            take_value_flag(&mut args, "--out").as_deref(),
            Some("y.json")
        );
        assert_eq!(args, vec!["40".to_string()]);

        let mut args = vec!["40".to_string()];
        assert_eq!(take_value_flag(&mut args, "--out"), None);
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn boolean_flag_extraction_removes_only_the_flag() {
        let mut args = vec!["10".to_string(), "--json".into(), "4".into()];
        assert!(take_flag(&mut args, "--json"));
        assert!(!take_flag(&mut args, "--json"));
        assert_eq!(args, vec!["10".to_string(), "4".into()]);
    }

    #[test]
    fn positional_count_follows_the_samples_threads_convention() {
        let args = vec!["2,4".to_string(), "120".into()];
        assert_eq!(positional_count(&args, 1, 500), 120);
        assert_eq!(positional_count(&args, 2, 3), 3);
    }

    #[test]
    #[should_panic]
    fn dangling_value_flag_panics() {
        let mut args = vec!["--out".to_string()];
        take_value_flag(&mut args, "--out");
    }

    #[test]
    #[should_panic(expected = "needs a value, found flag '--json'")]
    fn value_flag_rejects_a_following_flag_as_its_value() {
        // The historical bug: `--checkpoint-dir --json` consumed `--json`
        // as the directory, silently disabling JSON output.
        let mut args = vec!["--checkpoint-dir".to_string(), "--json".into()];
        take_value_flag(&mut args, "--checkpoint-dir");
    }

    #[test]
    fn equals_spelling_still_accepts_flag_like_values() {
        let mut args = vec!["--out=--dashed-name".to_string()];
        assert_eq!(
            take_value_flag(&mut args, "--out").as_deref(),
            Some("--dashed-name")
        );
        assert!(args.is_empty());
    }

    #[test]
    #[should_panic(expected = "known keys")]
    fn mid_line_dangling_scenario_flag_panics_with_the_key_list() {
        // `--scenario` mid-line followed by another flag used to slip past
        // the last-position guard and swallow `--json` as the key.
        let mut args = vec!["--scenario".to_string(), "--json".into(), "24".into()];
        take_scenario_flag(&mut args);
    }
}
