//! Robustness workbench: the extensions from the paper's discussion
//! section, exercised on Syn A — bounded rationality (quantal response),
//! general-sum damage accounting, parameter sensitivity, and empirical
//! validation of the analytic loss by multi-period simulation.
//!
//! ```text
//! cargo run --release --example robust_audit
//! ```

use alert_audit::game::detection::{DetectionEstimator, DetectionModel};
use alert_audit::game::execute::AuditPolicy;
use alert_audit::game::general_sum::{damage_under_mixture, DamageModel};
use alert_audit::game::ordering::AuditOrder;
use alert_audit::game::payoff::PayoffMatrix;
use alert_audit::game::quantal::{solve_qr_thresholds, QuantalResponse};
use alert_audit::game::sensitivity::{sweep, Parameter, SensitivityConfig};
use alert_audit::game::simulation::simulate_policy;
use alert_audit::prelude::*;

fn main() {
    // The registry's Syn A game, pushed to budget 8 for this workbench.
    let mut spec = alert_audit::scenario::registry()
        .build("syn-a", 0)
        .expect("registered scenario");
    spec.budget = 8.0;
    let bank = spec.sample_bank(500, 11);
    let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);

    // ------------------------------------------------------------------
    // 1. Solve the standard (rational, zero-sum) game.
    // ------------------------------------------------------------------
    let solution = OapSolver::new(SolverConfig {
        epsilon: 0.1,
        n_samples: 500,
        seed: 11,
        ..Default::default()
    })
    .solve(&spec)
    .expect("solves");
    println!("rational zero-sum loss:   {:+.4}", solution.loss);

    // ------------------------------------------------------------------
    // 2. Validate the analytic loss empirically: 20k simulated periods.
    // ------------------------------------------------------------------
    let policy = AuditPolicy::new(
        solution.policy.thresholds.clone(),
        solution.policy.orders.clone(),
        solution.policy.probs.clone(),
    );
    let report = simulate_policy(&spec, &policy, &est, 20_000, 5);
    println!(
        "simulated loss:           {:+.4} (±{:.4} se), detection rate {:.1}%",
        report.mean_loss,
        report.loss_std / (report.n_periods as f64).sqrt(),
        100.0 * report.detection_rate()
    );

    // ------------------------------------------------------------------
    // 3. Boundedly rational attackers: how much does the worst-case policy
    //    leave on the table against logit attackers?
    // ------------------------------------------------------------------
    println!("\nquantal-response attackers (λ sweep):");
    for lambda in [0.0, 0.5, 2.0, 10.0] {
        let out =
            solve_qr_thresholds(&spec, &est, QuantalResponse::new(lambda), 0.25).expect("solves");
        println!("  λ = {lambda:>4}: optimized QR loss {:+.4}", out.value);
    }

    // ------------------------------------------------------------------
    // 4. General-sum view: organizational damage ≠ attacker utility.
    // ------------------------------------------------------------------
    let matrix = PayoffMatrix::build(
        &spec,
        &est,
        AuditOrder::enumerate_all(4),
        &solution.policy.thresholds,
    );
    let master = alert_audit::game::master::MasterSolver::solve(&spec, &matrix).expect("solves");
    for (label, model) in [
        ("zero-sum-equivalent", DamageModel::default()),
        (
            "fines dwarf gains  ",
            DamageModel {
                damage_per_reward: 4.0,
                recovery_per_penalty: 0.5,
            },
        ),
    ] {
        let d = damage_under_mixture(&spec, &matrix, &master.p_orders, &model);
        println!("general-sum damage ({label}): {d:+.4}");
    }

    // ------------------------------------------------------------------
    // 5. Sensitivity: how does the value move with the payoff guesses?
    // ------------------------------------------------------------------
    println!("\nsensitivity of the solved loss (scale × base parameter):");
    for param in [Parameter::Reward, Parameter::Penalty, Parameter::Budget] {
        let curve = sweep(
            &spec,
            param,
            &SensitivityConfig {
                scales: vec![0.5, 1.0, 2.0],
                epsilon: 0.25,
                n_samples: 300,
                seed: 11,
                threads: 1,
            },
        )
        .expect("sweep solves");
        let values: Vec<String> = curve
            .iter()
            .map(|p| format!("{}x → {:+.2}", p.scale, p.loss))
            .collect();
        println!("  {param:?}: {}", values.join(", "));
    }
}
