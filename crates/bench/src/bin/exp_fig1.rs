//! Experiment E7 — paper Figure 1: auditor's loss on Rea A (EMR access
//! alerts) across budgets 10..=100 for the proposed model (ε ∈
//! {0.1, 0.2, 0.3}) and the three baselines.
//!
//! ```text
//! cargo run -p audit-bench --release --bin exp_fig1 [budgets] [samples] [repeats] [threads]
//! ```
//!
//! `samples` overrides the Monte-Carlo sample count, `repeats` the
//! random-threshold baseline repetitions, `threads` the detection-engine
//! workers (default: `AUDIT_THREADS` or 1; thread count never changes the
//! numbers). The laptop-scale Rea A configuration is used (fewer simulated
//! people, identical statistical structure), since the full-scale world
//! only changes simulation time, not the game.

use audit_bench::defaults::{
    default_threads, parse_count, FIG_EPSILONS, RANDOM_ORDER_SAMPLES, RANDOM_THRESHOLD_REPEATS,
    REAL_SAMPLES, SEED,
};
use audit_bench::real_experiments::{budget_sweep, render_figure, SweepConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let budgets: Vec<f64> = args
        .get(1)
        .filter(|s| !s.starts_with("--"))
        .map(|s| {
            s.split(',')
                .map(|x| x.parse().expect("numeric list"))
                .collect()
        })
        .unwrap_or_else(audit_bench::defaults::fig1_budgets);
    let samples = parse_count(args.get(2).cloned(), REAL_SAMPLES);
    let repeats = parse_count(args.get(3).cloned(), RANDOM_THRESHOLD_REPEATS);
    let threads = parse_count(args.get(4).cloned(), default_threads());

    eprintln!("Figure 1 reproduction: Rea A (synthetic VUMC EMR workload)");
    let t0 = std::time::Instant::now();
    let config = emrsim::reaa::small_config(SEED);
    let (spec, profile) = emrsim::reaa::build_game_with_profile(&config).expect("Rea A builds");
    eprintln!(
        "fitted per-type means: {:?}",
        profile
            .means
            .iter()
            .map(|m| (m * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    let sweep = SweepConfig {
        epsilons: FIG_EPSILONS.to_vec(),
        n_samples: samples,
        seed: SEED,
        random_order_samples: RANDOM_ORDER_SAMPLES,
        random_threshold_repeats: repeats,
        dedup_actions: true,
        threads,
    };
    let data = budget_sweep(&spec, &budgets, &sweep).expect("sweep solves");
    println!("{}", render_figure(&data));
    eprintln!("elapsed: {:.1?}", t0.elapsed());
}
