//! Experiment E8 — paper Figure 2: auditor's loss on Rea B (credit-card
//! applications) across budgets 10..=250 for the proposed model and the
//! three baselines.
//!
//! ```text
//! cargo run -p audit-bench --release --bin exp_fig2 [budgets] [samples] [repeats] [threads]
//! ```

use audit_bench::defaults::{
    default_threads, parse_count, FIG_EPSILONS, RANDOM_ORDER_SAMPLES, RANDOM_THRESHOLD_REPEATS,
    REAL_SAMPLES, SEED,
};
use audit_bench::real_experiments::{budget_sweep, render_figure, SweepConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let budgets: Vec<f64> = args
        .get(1)
        .map(|s| {
            s.split(',')
                .map(|x| x.parse().expect("numeric list"))
                .collect()
        })
        .unwrap_or_else(audit_bench::defaults::fig2_budgets);
    let samples = parse_count(args.get(2).cloned(), REAL_SAMPLES);
    let repeats = parse_count(args.get(3).cloned(), RANDOM_THRESHOLD_REPEATS);
    let threads = parse_count(args.get(4).cloned(), default_threads());

    eprintln!("Figure 2 reproduction: Rea B (synthetic Statlog credit data)");
    let t0 = std::time::Instant::now();
    let config = creditsim::reab::ReaBConfig {
        seed: SEED,
        ..Default::default()
    };
    let (spec, profile) = creditsim::reab::build_game_with_profile(&config).expect("Rea B builds");
    eprintln!(
        "fitted per-type means: {:?}",
        profile
            .means
            .iter()
            .map(|m| (m * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    let sweep = SweepConfig {
        epsilons: FIG_EPSILONS.to_vec(),
        n_samples: samples,
        seed: SEED,
        random_order_samples: RANDOM_ORDER_SAMPLES,
        random_threshold_repeats: repeats,
        dedup_actions: true,
        threads,
    };
    let data = budget_sweep(&spec, &budgets, &sweep).expect("sweep solves");
    println!("{}", render_figure(&data));
    eprintln!("elapsed: {:.1?}", t0.elapsed());
}
