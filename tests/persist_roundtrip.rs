//! Persistence round-trip and corruption-hardening net over the full
//! scenario registry.
//!
//! Three properties pin the snapshot layer down:
//!
//! 1. **Byte-stable round trips** — for every registry scenario,
//!    encode → decode → re-encode of the scenario snapshot (provenance +
//!    spec + bank) is byte-identical, so a snapshot can be copied through
//!    any number of load/save cycles without drifting.
//! 2. **Solver equivalence** — solving on a snapshot-loaded bank is
//!    bit-identical to solving on a regenerated one (ISHM + CGGS inner,
//!    and the exact inner on the paper game), across worker thread
//!    counts: the persisted path may never change a result.
//! 3. **Corruption hardening** — a table of mutilated files (truncated at
//!    every interesting boundary, payload bit flips, foreign magic,
//!    future format version, wrong container kind) all surface typed
//!    [`PersistError`]s, never panics and never a silently-wrong load.
//!
//! A committed golden snapshot (`tests/golden/persist_format_v1.snap`)
//! additionally pins the on-disk encoding itself: if the byte layout
//! changes, the test demands a deliberate `FORMAT_VERSION` bump and a
//! regeneration via `UPDATE_GOLDEN=1 cargo test --test persist_roundtrip`.

use alert_audit::persist::{
    load_scenario_snapshot, scenario_snapshot_bytes, scenario_snapshot_from_bytes, BankReadOptions,
    BankSource, PersistError, Snapshot, SnapshotError, SnapshotVerify, FORMAT_VERSION, HEADER_LEN,
};
use alert_audit::scenario::registry;
use audit_game::error::GameError;
use audit_game::solver::{InnerKind, OapSolver, SolverConfig};

const BANK_ROWS: usize = 120;

fn snapshot_bytes_for(key: &str) -> Vec<u8> {
    let reg = registry();
    let sc = reg.resolve(key).unwrap().clone();
    let seed = sc.default_seed();
    let spec = sc.build_small(seed).unwrap();
    let bank = spec.sample_bank(BANK_ROWS, seed);
    scenario_snapshot_bytes(key, seed, &spec, &bank).unwrap()
}

#[test]
fn every_registry_scenario_roundtrips_byte_identically() {
    for sc in registry().iter() {
        let bytes = snapshot_bytes_for(sc.key());
        let snap = scenario_snapshot_from_bytes(&bytes, BankReadOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", sc.key()));
        assert_eq!(snap.key, sc.key());
        let again = scenario_snapshot_bytes(&snap.key, snap.seed, &snap.spec, &snap.bank)
            .unwrap_or_else(|e| panic!("{}: {e}", sc.key()));
        assert_eq!(
            bytes,
            again,
            "{}: save -> load -> save drifted at the byte level",
            sc.key()
        );
    }
}

fn assert_bit_identical(
    key: &str,
    threads: usize,
    a: &audit_game::solver::AuditSolution,
    b: &audit_game::solver::AuditSolution,
) {
    let ctx = format!("{key} at {threads} thread(s)");
    assert_eq!(
        a.loss.to_bits(),
        b.loss.to_bits(),
        "{ctx}: loss diverged between regenerated and snapshot banks"
    );
    assert_eq!(
        a.policy
            .thresholds
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        b.policy
            .thresholds
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        "{ctx}: thresholds diverged"
    );
    assert_eq!(a.policy.orders, b.policy.orders, "{ctx}: orders diverged");
    assert_eq!(
        a.policy
            .probs
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        b.policy
            .probs
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        "{ctx}: order probabilities diverged"
    );
}

/// Solving on a loaded bank must be indistinguishable from solving on a
/// regenerated one — on every scenario, at 1/2/4 worker threads.
#[test]
fn snapshot_bank_solves_bit_identically_to_regeneration() {
    let reg = registry();
    for sc in reg.iter() {
        let key = sc.key();
        let seed = sc.default_seed();
        let spec = sc.build_small(seed).unwrap();
        let bank = spec.sample_bank(BANK_ROWS, seed);
        let bytes = scenario_snapshot_bytes(key, seed, &spec, &bank).unwrap();
        let snap = scenario_snapshot_from_bytes(&bytes, BankReadOptions::default()).unwrap();
        for threads in [1usize, 2, 4] {
            let solver = OapSolver::new(SolverConfig {
                epsilon: sc.suggested_epsilon(),
                n_samples: BANK_ROWS,
                seed,
                threads,
                ..Default::default()
            });
            let fresh = solver
                .solve_with_bank(&spec, &bank, None)
                .unwrap_or_else(|e| panic!("{key}: {e}"));
            let loaded = solver
                .solve_with_bank(&snap.spec, &snap.bank, None)
                .unwrap_or_else(|e| panic!("{key}: {e}"));
            assert_bit_identical(key, threads, &fresh, &loaded);
        }
    }
}

/// The exact inner evaluator takes a different code path through the
/// detection engine; pin it on the paper game.
#[test]
fn exact_inner_matches_on_snapshot_bank_too() {
    let reg = registry();
    let sc = reg.resolve("syn-a").unwrap().clone();
    let seed = sc.default_seed();
    let spec = sc.build_small(seed).unwrap();
    let bank = spec.sample_bank(BANK_ROWS, seed);
    let bytes = scenario_snapshot_bytes("syn-a", seed, &spec, &bank).unwrap();
    let snap = scenario_snapshot_from_bytes(&bytes, BankReadOptions::default()).unwrap();
    let solver = OapSolver::new(SolverConfig {
        epsilon: sc.suggested_epsilon(),
        n_samples: BANK_ROWS,
        seed,
        inner: InnerKind::Exact,
        ..Default::default()
    });
    let fresh = solver.solve_with_bank(&spec, &bank, None).unwrap();
    let loaded = solver
        .solve_with_bank(&snap.spec, &snap.bank, None)
        .unwrap();
    assert_bit_identical("syn-a/exact", 1, &fresh, &loaded);
}

/// `BankSource` is the drivers' seam; both arms must agree bit-for-bit.
#[test]
fn bank_source_arms_agree() {
    let reg = registry();
    let sc = reg.resolve("syn-seasonal").unwrap().clone();
    let seed = sc.default_seed();
    let dir = std::env::temp_dir().join(format!("audit-banksource-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bank.snap");

    let (spec, bank) = BankSource::Regenerate { seed }
        .resolve(sc.as_ref(), BANK_ROWS)
        .unwrap();
    alert_audit::persist::save_scenario_snapshot(&path, sc.key(), seed, &spec, &bank).unwrap();
    for verify in [SnapshotVerify::Rebuild, SnapshotVerify::Fingerprint] {
        let (spec2, bank2) = BankSource::Snapshot {
            path: path.clone(),
            verify,
        }
        .resolve(sc.as_ref(), BANK_ROWS)
        .unwrap();
        assert_eq!(spec.fingerprint(), spec2.fingerprint());
        assert_eq!(bank.columns_flat(), bank2.columns_flat());

        // A snapshot of the wrong size is rejected, not resampled.
        let err = BankSource::Snapshot {
            path: path.clone(),
            verify,
        }
        .resolve(sc.as_ref(), BANK_ROWS + 1)
        .unwrap_err();
        assert!(
            matches!(err, GameError::Persist(PersistError::Provenance(_))),
            "unexpected error: {err}"
        );
        // And a snapshot from another scenario is rejected by key, even
        // without the rebuild check.
        let other = reg.resolve("syn-a").unwrap().clone();
        let err = BankSource::Snapshot {
            path: path.clone(),
            verify,
        }
        .resolve(other.as_ref(), BANK_ROWS)
        .unwrap_err();
        assert!(
            matches!(err, GameError::Persist(PersistError::Provenance(_))),
            "unexpected error: {err}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Corruption hardening: the table
// ---------------------------------------------------------------------

/// What a corrupted load is expected to produce. Matching on the exact
/// variant (not just "some error") keeps the failure taxonomy honest.
enum Expect {
    BadMagic,
    FutureVersion,
    Checksum,
    Truncated,
    WrongKind,
}

impl Expect {
    fn matches(&self, e: &PersistError) -> bool {
        matches!(
            (self, e),
            (
                Expect::BadMagic,
                PersistError::Snapshot(SnapshotError::BadMagic)
            ) | (
                Expect::FutureVersion,
                PersistError::Snapshot(SnapshotError::UnsupportedVersion { .. }),
            ) | (
                Expect::Checksum,
                PersistError::Snapshot(SnapshotError::ChecksumMismatch { .. }),
            ) | (
                Expect::Truncated,
                PersistError::Snapshot(SnapshotError::Truncated { .. }),
            ) | (
                Expect::WrongKind,
                PersistError::Snapshot(SnapshotError::WrongKind { .. }),
            )
        )
    }

    fn name(&self) -> &'static str {
        match self {
            Expect::BadMagic => "BadMagic",
            Expect::FutureVersion => "UnsupportedVersion",
            Expect::Checksum => "ChecksumMismatch",
            Expect::Truncated => "Truncated",
            Expect::WrongKind => "WrongKind",
        }
    }
}

#[test]
fn corrupted_snapshots_fail_with_typed_errors_not_panics() {
    let good = snapshot_bytes_for("syn-a");
    assert!(
        good.len() > HEADER_LEN + 64,
        "fixture too small to mutilate"
    );

    let cases: Vec<(&'static str, Vec<u8>, Expect)> = vec![
        ("empty file", Vec::new(), Expect::Truncated),
        (
            "half a header",
            good[..HEADER_LEN / 2].to_vec(),
            Expect::Truncated,
        ),
        (
            "header only, payload gone",
            good[..HEADER_LEN].to_vec(),
            Expect::Truncated,
        ),
        (
            "payload cut mid-section",
            good[..good.len() - 9].to_vec(),
            Expect::Truncated,
        ),
        (
            "foreign magic",
            {
                let mut b = good.clone();
                b[..8].copy_from_slice(b"NOTASNAP");
                b
            },
            Expect::BadMagic,
        ),
        (
            "future format version",
            {
                let mut b = good.clone();
                b[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
                b
            },
            Expect::FutureVersion,
        ),
        (
            "one payload bit flipped",
            {
                let mut b = good.clone();
                let i = HEADER_LEN + 40;
                b[i] ^= 0x01;
                b
            },
            Expect::Checksum,
        ),
        (
            "last payload byte flipped",
            {
                let mut b = good.clone();
                let i = b.len() - 1;
                b[i] ^= 0x80;
                b
            },
            Expect::Checksum,
        ),
        (
            "checksum field itself tampered",
            {
                let mut b = good.clone();
                b[24] ^= 0xff;
                b
            },
            Expect::Checksum,
        ),
        (
            "runtime-state kind where a scenario bank is expected",
            {
                // Re-checksum so only the kind disagrees: isolates the
                // kind check from the integrity check.
                let snap = Snapshot::from_bytes(&good).unwrap();
                let mut clone = Snapshot::new(alert_audit::persist::KIND_RUNTIME_STATE);
                for tag in [
                    alert_audit::persist::TAG_PROVENANCE,
                    alert_audit::persist::TAG_SPEC_META,
                ] {
                    let mut r = snap.section(tag).unwrap();
                    let mut w = alert_audit::persist::SectionWriter::new();
                    while r.remaining() >= 8 {
                        w.put_u64(r.get_u64().unwrap());
                    }
                    clone.add_section(tag, w);
                }
                clone.to_bytes()
            },
            Expect::WrongKind,
        ),
    ];

    let dir = std::env::temp_dir().join(format!("audit-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut failures = Vec::new();
    for (i, (label, bytes, expect)) in cases.iter().enumerate() {
        // Exercise the real file path, not just the byte path.
        let path = dir.join(format!("case_{i}.snap"));
        std::fs::write(&path, bytes).unwrap();
        match load_scenario_snapshot(&path, BankReadOptions::default()) {
            Ok(_) => failures.push(format!("{label}: loaded successfully?!")),
            Err(e) if expect.matches(&e) => {}
            Err(e) => failures.push(format!("{label}: wanted {}, got: {e}", expect.name())),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn missing_file_is_a_typed_io_error() {
    let err = load_scenario_snapshot(
        std::path::Path::new("/nonexistent/audit-snapshot.snap"),
        BankReadOptions::default(),
    )
    .unwrap_err();
    assert!(
        matches!(err, PersistError::Snapshot(SnapshotError::Io(_))),
        "unexpected error: {err}"
    );
}

// ---------------------------------------------------------------------
// Golden on-disk format gate
// ---------------------------------------------------------------------

fn golden_snapshot_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("persist_format_v{FORMAT_VERSION}.snap"))
}

/// The committed golden snapshot pins the byte-level encoding. Any layout
/// change must show up here — and because the golden file name carries
/// the format version, regenerating it without bumping `FORMAT_VERSION`
/// leaves a stale `persist_format_v<old>.snap` behind for review.
#[test]
fn on_disk_format_matches_the_committed_golden_snapshot() {
    let bytes = snapshot_bytes_for("syn-a");
    let path = golden_snapshot_path();
    if std::env::var("UPDATE_GOLDEN")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        std::fs::write(&path, &bytes).expect("write golden snapshot");
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "{} unreadable ({e}); regenerate with UPDATE_GOLDEN=1 \
             cargo test --test persist_roundtrip",
            path.display()
        )
    });
    assert_eq!(
        golden,
        bytes,
        "snapshot encoding drifted from {}; if intentional, bump \
         stochastics::snapshot::FORMAT_VERSION and regenerate with UPDATE_GOLDEN=1",
        path.display()
    );
    // The golden bytes must also still parse — guards against committing
    // a mutilated golden.
    let snap = scenario_snapshot_from_bytes(&golden, BankReadOptions::default()).unwrap();
    assert_eq!(snap.key, "syn-a");
}
