//! Discrete count distributions: the `F_t(n)` models of the paper.
//!
//! Each alert type `t` has a distribution over the number of benign alerts
//! raised per audit period. The paper's synthetic evaluation uses a Gaussian
//! "discretized on the x-axis" and truncated to a 99.5% coverage window
//! (Section IV.A); the real-data evaluations fit distributions from logs.

use crate::normal::{normal_cdf, normal_quantile};
use crate::snapshot::DistParams;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over non-negative integer alert counts.
///
/// Implementors must provide a *finite* support upper bound: the paper's
/// search procedures rely on a count `n` with `F_t(n) ≈ 1` to bound audit
/// thresholds (Section III-B).
pub trait CountDistribution: Send + Sync {
    /// Probability mass at exactly `n` alerts.
    fn pmf(&self, n: u64) -> f64;

    /// `F_t(n)`: probability that **at most** `n` alerts are generated.
    fn cdf(&self, n: u64) -> f64 {
        (0..=n).map(|k| self.pmf(k)).sum()
    }

    /// Smallest count `n` such that `F_t(n) ≥ 1 − tail` (the coverage bound).
    fn coverage_bound(&self, tail: f64) -> u64 {
        let target = 1.0 - tail;
        let mut n = 0;
        let mut acc = 0.0;
        let hard_cap = self.support_max();
        loop {
            acc += self.pmf(n);
            if acc >= target || n >= hard_cap {
                return n;
            }
            n += 1;
        }
    }

    /// Largest count with non-zero mass (finite by construction).
    fn support_max(&self) -> u64;

    /// Smallest count with non-zero mass.
    fn support_min(&self) -> u64 {
        0
    }

    /// Expected count.
    fn mean(&self) -> f64 {
        (self.support_min()..=self.support_max())
            .map(|n| n as f64 * self.pmf(n))
            .sum()
    }

    /// Draw one realization.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> u64 {
        // Inverse-CDF sampling over the finite support. O(support) worst
        // case, which is fine for the count magnitudes in this workspace
        // (supports are at most a few hundred states).
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for n in self.support_min()..=self.support_max() {
            acc += self.pmf(n);
            if u <= acc {
                return n;
            }
        }
        self.support_max()
    }

    /// Constructor parameters for persistence, or `None` when the
    /// distribution cannot be snapshotted. All models in this crate
    /// override this; custom downstream distributions that keep the
    /// default fail persistence with a typed error instead of silently
    /// degrading.
    fn snapshot_params(&self) -> Option<DistParams> {
        None
    }
}

/// Gaussian N(mean, std²) discretized to integer counts and truncated to a
/// symmetric coverage window, mirroring the Syn A construction: "we
/// discretize the x-axis of each alerts cumulative distribution function"
/// and "consider the 99.5% probability coverage ... to obtain a finite upper
/// bound" (Section IV.A).
///
/// Mass of integer `n` is `Φ((n+½−μ)/σ) − Φ((n−½−μ)/σ)` renormalized over
/// the truncated support `[max(0, μ−w), μ+w]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiscretizedGaussian {
    mean: f64,
    std: f64,
    lo: u64,
    hi: u64,
    /// Pre-computed normalized pmf over `[lo, hi]`.
    pmf: Vec<f64>,
}

impl DiscretizedGaussian {
    /// Construct with an explicit truncation half-width `w` (the paper's
    /// "99.5% coverage" column, e.g. ±5 for Syn A type 1).
    pub fn with_halfwidth(mean: f64, std: f64, halfwidth: u64) -> Self {
        assert!(std > 0.0, "std must be positive");
        assert!(mean >= 0.0, "mean must be non-negative");
        let lo = (mean.round() as i64 - halfwidth as i64).max(0) as u64;
        let hi = mean.round() as u64 + halfwidth;
        Self::on_window(mean, std, lo, hi)
    }

    /// Construct by choosing the truncation window so that it captures at
    /// least `coverage` (e.g. 0.995) of the underlying Gaussian mass.
    pub fn with_coverage(mean: f64, std: f64, coverage: f64) -> Self {
        assert!(
            coverage > 0.0 && coverage < 1.0,
            "coverage must be in (0,1)"
        );
        let tail = (1.0 - coverage) / 2.0;
        let halfwidth = (normal_quantile(1.0 - tail, 0.0, 1.0) * std)
            .ceil()
            .max(1.0) as u64;
        Self::with_halfwidth(mean, std, halfwidth)
    }

    /// Construct over an explicit integer window `[lo, hi]`.
    pub fn on_window(mean: f64, std: f64, lo: u64, hi: u64) -> Self {
        assert!(std > 0.0, "std must be positive");
        assert!(hi >= lo, "window must be non-empty");
        let mut pmf: Vec<f64> = (lo..=hi)
            .map(|n| {
                let hi_edge = normal_cdf(n as f64 + 0.5, mean, std);
                let lo_edge = normal_cdf(n as f64 - 0.5, mean, std);
                (hi_edge - lo_edge).max(0.0)
            })
            .collect();
        let total: f64 = pmf.iter().sum();
        assert!(total > 0.0, "truncation window carries no mass");
        for p in &mut pmf {
            *p /= total;
        }
        Self {
            mean,
            std,
            lo,
            hi,
            pmf,
        }
    }

    /// The underlying Gaussian mean parameter.
    pub fn gaussian_mean(&self) -> f64 {
        self.mean
    }

    /// The underlying Gaussian standard deviation parameter.
    pub fn gaussian_std(&self) -> f64 {
        self.std
    }
}

impl CountDistribution for DiscretizedGaussian {
    fn pmf(&self, n: u64) -> f64 {
        if n < self.lo || n > self.hi {
            0.0
        } else {
            self.pmf[(n - self.lo) as usize]
        }
    }

    fn support_max(&self) -> u64 {
        self.hi
    }

    fn support_min(&self) -> u64 {
        self.lo
    }

    fn snapshot_params(&self) -> Option<DistParams> {
        // `with_halfwidth` / `with_coverage` both resolve to `on_window`,
        // so (mean, std, lo, hi) reconstructs any path bit-exactly.
        Some(DistParams::Gaussian {
            mean: self.mean,
            std: self.std,
            lo: self.lo,
            hi: self.hi,
        })
    }
}

/// Empirical distribution over observed per-period counts (used for the
/// real-data experiments, where `F_t` "can be obtained from historical alert
/// logs", Section II-A).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Empirical {
    /// `weights[n]` is the number of observed periods with exactly `n` alerts.
    weights: Vec<u64>,
    total: u64,
}

impl Empirical {
    /// Build from raw per-period observations.
    pub fn from_observations(obs: &[u64]) -> Self {
        assert!(!obs.is_empty(), "need at least one observation");
        let max = *obs.iter().max().expect("non-empty");
        let mut weights = vec![0u64; (max + 1) as usize];
        for &o in obs {
            weights[o as usize] += 1;
        }
        Self {
            total: obs.len() as u64,
            weights,
        }
    }

    /// Build directly from a histogram `weights[n] = #periods with n alerts`.
    pub fn from_histogram(weights: Vec<u64>) -> Self {
        let total: u64 = weights.iter().sum();
        assert!(total > 0, "histogram must contain mass");
        Self { weights, total }
    }

    /// Number of underlying observations.
    pub fn n_observations(&self) -> u64 {
        self.total
    }
}

impl CountDistribution for Empirical {
    fn pmf(&self, n: u64) -> f64 {
        self.weights
            .get(n as usize)
            .map(|&w| w as f64 / self.total as f64)
            .unwrap_or(0.0)
    }

    fn support_max(&self) -> u64 {
        (self.weights.len() as u64).saturating_sub(1)
    }

    fn snapshot_params(&self) -> Option<DistParams> {
        Some(DistParams::Empirical {
            weights: self.weights.clone(),
        })
    }
}

/// Poisson(λ) truncated at a high quantile so the support is finite.
///
/// Useful as an alternative benign-workload model in the TDMT substrate and
/// for sensitivity analyses of the Gaussian assumption.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Poisson {
    lambda: f64,
    cap: u64,
    pmf: Vec<f64>,
}

impl Poisson {
    /// Construct with a mass cutoff: the support is truncated at the
    /// smallest `n` with cumulative untruncated mass ≥ `1 − 1e-9`, then
    /// renormalized.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        let mut pmf = Vec::new();
        // Iterative pmf: p(0) = e^{-λ}, p(n) = p(n-1)·λ/n.
        let mut p = (-lambda).exp();
        let mut acc = 0.0;
        let mut n = 0u64;
        loop {
            pmf.push(p);
            acc += p;
            if acc >= 1.0 - 1e-9 && n as f64 > lambda {
                break;
            }
            n += 1;
            p *= lambda / n as f64;
            if n > 10_000_000 {
                panic!("Poisson support truncation failed to converge");
            }
        }
        let total: f64 = pmf.iter().sum();
        for q in &mut pmf {
            *q /= total;
        }
        Self {
            lambda,
            cap: n,
            pmf,
        }
    }

    /// The rate parameter λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl CountDistribution for Poisson {
    fn pmf(&self, n: u64) -> f64 {
        self.pmf.get(n as usize).copied().unwrap_or(0.0)
    }

    fn support_max(&self) -> u64 {
        self.cap
    }

    fn mean(&self) -> f64 {
        // Exact within truncation error; overridden to avoid the O(support)
        // default when callers only need the parameter.
        self.lambda
    }

    fn snapshot_params(&self) -> Option<DistParams> {
        // `new(lambda)` derives the cap deterministically, so λ suffices.
        Some(DistParams::Poisson {
            lambda: self.lambda,
        })
    }
}

/// Truncated discrete power law ("Zipf-like") over `[0, cap]`:
/// `pmf(n) ∝ (n + 1)^{-s}`, renormalized.
///
/// A heavy-tailed benign-count model: most periods raise few alerts, but
/// rare bursts reach far into the tail — the regime where the Gaussian
/// assumption of the paper's synthetic data is most stressed. Used by the
/// `syn-heavy-tail` scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Zipf {
    exponent: f64,
    cap: u64,
    pmf: Vec<f64>,
}

impl Zipf {
    /// Power law with the given exponent `s > 0`, truncated at `cap`.
    pub fn new(exponent: f64, cap: u64) -> Self {
        assert!(
            exponent.is_finite() && exponent > 0.0,
            "exponent must be positive"
        );
        let mut pmf: Vec<f64> = (0..=cap)
            .map(|n| ((n + 1) as f64).powf(-exponent))
            .collect();
        let total: f64 = pmf.iter().sum();
        for p in &mut pmf {
            *p /= total;
        }
        Self { exponent, cap, pmf }
    }

    /// The tail exponent `s`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }
}

impl CountDistribution for Zipf {
    fn pmf(&self, n: u64) -> f64 {
        self.pmf.get(n as usize).copied().unwrap_or(0.0)
    }

    fn support_max(&self) -> u64 {
        self.cap
    }

    fn snapshot_params(&self) -> Option<DistParams> {
        Some(DistParams::Zipf {
            exponent: self.exponent,
            cap: self.cap,
        })
    }
}

/// Finite mixture of count distributions with fixed weights.
///
/// This is the *marginal* model matching the correlated/seasonal joint
/// samplers: when counts are drawn by first picking a latent regime (or a
/// season phase) and then sampling each type from the regime's component,
/// each type's marginal law is exactly this mixture. Keeping the marginal
/// in `GameSpec::distributions` keeps threshold bounds and validation
/// consistent with what the joint sample bank actually produces.
#[derive(Clone)]
pub struct Mixture {
    components: Vec<(f64, std::sync::Arc<dyn CountDistribution>)>,
}

impl std::fmt::Debug for Mixture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mixture")
            .field("n_components", &self.components.len())
            .field(
                "weights",
                &self.components.iter().map(|(w, _)| *w).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Mixture {
    /// Build from `(weight, component)` pairs; weights are renormalized.
    pub fn new(components: Vec<(f64, std::sync::Arc<dyn CountDistribution>)>) -> Self {
        assert!(!components.is_empty(), "mixture needs components");
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(
            total.is_finite() && total > 0.0,
            "mixture weights must have positive finite mass"
        );
        assert!(
            components.iter().all(|(w, _)| *w >= 0.0),
            "mixture weights must be non-negative"
        );
        Self {
            components: components
                .into_iter()
                .map(|(w, d)| (w / total, d))
                .collect(),
        }
    }

    /// Build from **already-normalized** `(weight, component)` pairs,
    /// trusting the weights bit-for-bit. This is the snapshot-restore
    /// path: [`Mixture::new`] divides by the total, and re-dividing
    /// persisted normalized weights would perturb their low bits and
    /// break bit-exact reconstruction.
    pub fn from_normalized(components: Vec<(f64, std::sync::Arc<dyn CountDistribution>)>) -> Self {
        assert!(!components.is_empty(), "mixture needs components");
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(
            (total - 1.0).abs() < 1e-6 && components.iter().all(|(w, _)| *w >= 0.0),
            "weights must already be normalized"
        );
        Self { components }
    }
}

impl CountDistribution for Mixture {
    fn pmf(&self, n: u64) -> f64 {
        self.components.iter().map(|(w, d)| w * d.pmf(n)).sum()
    }

    fn support_max(&self) -> u64 {
        self.components
            .iter()
            .map(|(_, d)| d.support_max())
            .max()
            .expect("non-empty mixture")
    }

    fn support_min(&self) -> u64 {
        self.components
            .iter()
            .map(|(_, d)| d.support_min())
            .min()
            .expect("non-empty mixture")
    }

    fn mean(&self) -> f64 {
        self.components.iter().map(|(w, d)| w * d.mean()).sum()
    }

    fn snapshot_params(&self) -> Option<DistParams> {
        // The *internal* (normalized) weights are persisted; restore goes
        // through `from_normalized` so they survive bit-for-bit.
        self.components
            .iter()
            .map(|(w, d)| d.snapshot_params().map(|p| (*w, p)))
            .collect::<Option<Vec<_>>>()
            .map(|components| DistParams::Mixture { components })
    }
}

/// Deterministic count (used by the NP-hardness reduction, which sets
/// `Z_t = 1` with probability 1 for every type; Appendix, Theorem 1).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Constant(pub u64);

impl CountDistribution for Constant {
    fn pmf(&self, n: u64) -> f64 {
        if n == self.0 {
            1.0
        } else {
            0.0
        }
    }

    fn support_max(&self) -> u64 {
        self.0
    }

    fn support_min(&self) -> u64 {
        self.0
    }

    fn mean(&self) -> f64 {
        self.0 as f64
    }

    fn sample(&self, _rng: &mut dyn rand::RngCore) -> u64 {
        self.0
    }

    fn snapshot_params(&self) -> Option<DistParams> {
        Some(DistParams::Constant(self.0))
    }
}

/// Uniform distribution over the integer range `[lo, hi]`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UniformCount {
    lo: u64,
    hi: u64,
}

impl UniformCount {
    /// Uniform over `[lo, hi]` inclusive.
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(hi >= lo, "hi must be >= lo");
        Self { lo, hi }
    }
}

impl CountDistribution for UniformCount {
    fn pmf(&self, n: u64) -> f64 {
        if n >= self.lo && n <= self.hi {
            1.0 / (self.hi - self.lo + 1) as f64
        } else {
            0.0
        }
    }

    fn support_max(&self) -> u64 {
        self.hi
    }

    fn support_min(&self) -> u64 {
        self.lo
    }

    fn mean(&self) -> f64 {
        (self.lo + self.hi) as f64 / 2.0
    }

    fn sample(&self, rng: &mut dyn rand::RngCore) -> u64 {
        rng.gen_range(self.lo..=self.hi)
    }

    fn snapshot_params(&self) -> Option<DistParams> {
        Some(DistParams::Uniform {
            lo: self.lo,
            hi: self.hi,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn total_mass(d: &dyn CountDistribution) -> f64 {
        (d.support_min()..=d.support_max()).map(|n| d.pmf(n)).sum()
    }

    #[test]
    fn discretized_gaussian_normalizes() {
        let d = DiscretizedGaussian::with_halfwidth(6.0, 2.0, 5);
        assert!((total_mass(&d) - 1.0).abs() < 1e-12);
        assert_eq!(d.support_min(), 1);
        assert_eq!(d.support_max(), 11);
    }

    #[test]
    fn discretized_gaussian_mean_close_to_parameter() {
        let d = DiscretizedGaussian::with_halfwidth(6.0, 2.0, 5);
        assert!((d.mean() - 6.0).abs() < 0.05, "mean = {}", d.mean());
    }

    #[test]
    fn discretized_gaussian_mode_at_mean() {
        let d = DiscretizedGaussian::with_halfwidth(5.0, 1.6, 4);
        let mode = (d.support_min()..=d.support_max())
            .max_by(|&a, &b| d.pmf(a).partial_cmp(&d.pmf(b)).unwrap())
            .unwrap();
        assert_eq!(mode, 5);
    }

    #[test]
    fn discretized_gaussian_clips_at_zero() {
        // mean 1, halfwidth 5 would extend to -4; support must start at 0.
        let d = DiscretizedGaussian::with_halfwidth(1.0, 2.0, 5);
        assert_eq!(d.support_min(), 0);
        assert!((total_mass(&d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_constructor_covers() {
        let d = DiscretizedGaussian::with_coverage(10.0, 3.0, 0.995);
        // Window must hold at least ~99.5% of an untruncated Gaussian, so
        // the halfwidth must be >= 2.81σ ≈ 8.4 → 9.
        assert!(d.support_max() >= 19);
    }

    #[test]
    fn cdf_reaches_one() {
        let d = DiscretizedGaussian::with_halfwidth(4.0, 1.3, 3);
        assert!((d.cdf(d.support_max()) - 1.0).abs() < 1e-12);
        assert!(d.cdf(3) < 1.0);
    }

    #[test]
    fn coverage_bound_hits_support_max_for_tiny_tail() {
        let d = DiscretizedGaussian::with_halfwidth(4.0, 1.0, 3);
        assert_eq!(d.coverage_bound(0.0), d.support_max());
    }

    #[test]
    fn empirical_roundtrip() {
        let obs = [3u64, 3, 4, 5, 5, 5, 7];
        let d = Empirical::from_observations(&obs);
        assert!((d.pmf(5) - 3.0 / 7.0).abs() < 1e-12);
        assert!((d.pmf(0)).abs() < 1e-12);
        assert_eq!(d.support_max(), 7);
        assert!((total_mass(&d) - 1.0).abs() < 1e-12);
        let emp_mean = obs.iter().sum::<u64>() as f64 / obs.len() as f64;
        assert!((d.mean() - emp_mean).abs() < 1e-12);
    }

    #[test]
    fn empirical_from_histogram() {
        let d = Empirical::from_histogram(vec![0, 2, 2]);
        assert!((d.pmf(1) - 0.5).abs() < 1e-12);
        assert!((d.cdf(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn poisson_mass_and_mean() {
        let d = Poisson::new(4.0);
        assert!((total_mass(&d) - 1.0).abs() < 1e-9);
        let empirical_mean: f64 = (0..=d.support_max()).map(|n| n as f64 * d.pmf(n)).sum();
        assert!((empirical_mean - 4.0).abs() < 1e-6);
    }

    #[test]
    fn constant_is_degenerate() {
        let d = Constant(1);
        assert_eq!(d.sample(&mut seeded_rng(0)), 1);
        assert!((d.cdf(0)).abs() < 1e-12);
        assert!((d.cdf(1) - 1.0).abs() < 1e-12);
        assert_eq!(d.coverage_bound(0.005), 1);
    }

    #[test]
    fn uniform_bounds() {
        let d = UniformCount::new(2, 5);
        assert!((total_mass(&d) - 1.0).abs() < 1e-12);
        assert!((d.mean() - 3.5).abs() < 1e-12);
        let mut rng = seeded_rng(1);
        for _ in 0..100 {
            let s = d.sample(&mut rng);
            assert!((2..=5).contains(&s));
        }
    }

    #[test]
    fn sampling_matches_pmf() {
        let d = DiscretizedGaussian::with_halfwidth(6.0, 2.0, 5);
        let mut rng = seeded_rng(7);
        let n = 200_000;
        let mut hist = vec![0u64; (d.support_max() + 1) as usize];
        for _ in 0..n {
            hist[d.sample(&mut rng) as usize] += 1;
        }
        for k in d.support_min()..=d.support_max() {
            let freq = hist[k as usize] as f64 / n as f64;
            assert!(
                (freq - d.pmf(k)).abs() < 0.01,
                "count {k}: freq {freq} vs pmf {}",
                d.pmf(k)
            );
        }
    }

    #[test]
    fn zipf_normalizes_and_is_heavy_tailed() {
        let d = Zipf::new(1.8, 40);
        assert!((total_mass(&d) - 1.0).abs() < 1e-12);
        assert_eq!(d.support_max(), 40);
        // Monotone decreasing mass, but with a genuinely fat tail: the top
        // decile of the support keeps non-trivial mass compared to a
        // same-mean Gaussian.
        assert!(d.pmf(0) > d.pmf(1));
        assert!(d.pmf(36) > 0.0);
        let tail: f64 = (30..=40).map(|n| d.pmf(n)).sum();
        assert!(tail > 1e-3, "tail mass {tail} collapsed");
    }

    #[test]
    fn mixture_matches_component_average() {
        use std::sync::Arc;
        let d = Mixture::new(vec![
            (0.25, Arc::new(Constant(2)) as Arc<dyn CountDistribution>),
            (0.75, Arc::new(Constant(6))),
        ]);
        assert!((d.pmf(2) - 0.25).abs() < 1e-12);
        assert!((d.pmf(6) - 0.75).abs() < 1e-12);
        assert!((d.mean() - 5.0).abs() < 1e-12);
        assert_eq!(d.support_min(), 2);
        assert_eq!(d.support_max(), 6);
        assert!((total_mass(&d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixture_renormalizes_weights() {
        use std::sync::Arc;
        let d = Mixture::new(vec![
            (2.0, Arc::new(Constant(1)) as Arc<dyn CountDistribution>),
            (6.0, Arc::new(Constant(3))),
        ]);
        assert!((d.pmf(1) - 0.25).abs() < 1e-12);
        assert!((d.pmf(3) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn coverage_bound_monotone_in_tail() {
        let d = Poisson::new(9.0);
        assert!(d.coverage_bound(0.10) <= d.coverage_bound(0.01));
        assert!(d.coverage_bound(0.01) <= d.coverage_bound(0.001));
    }
}
