//! Multi-tenant fleet runtime: many independent audit streams, one
//! process.
//!
//! [`FleetService`] multiplexes N tenants — each a registry scenario with
//! its own seed, drift gate, attacker model, and committed policy — over
//! a bounded worker pool. Scheduling is **round-based**: round 0 cold-
//! starts every tenant (initial solve + alert-stream derivation), and
//! each later round advances every live tenant by exactly one epoch.
//! Within a round, workers pull tenant indices from a shared cursor; a
//! round is a barrier, so no tenant ever runs two epochs concurrently
//! with itself.
//!
//! **Determinism.** Each tenant's epoch loop is the unmodified
//! [`AuditService`] loop — per-period derived RNG streams, deterministic
//! solves — so a tenant's [`RuntimeReport`] is bit-identical to running
//! that tenant alone. The scheduler only decides *when* work happens,
//! never *what* it computes, so the [`FleetReport::fingerprint`] is
//! invariant across worker counts, reruns, and cache sharing.
//!
//! **Shared solver work.** With [`FleetConfig::share_caches`] on, every
//! tenant's solver joins one [`SharedPalCache`]: tenants whose sample
//! banks coincide (same deduped spec, bank parameters, detection model —
//! see [`audit_game::detection::shared_bank_key`]) adopt each other's
//! prefix-state snapshots instead of recomputing the columns. Adoption
//! is bit-identical by construction; only wall-clock time and cache
//! counters (excluded from fingerprints) change.

use crate::service::{AuditService, RuntimeConfig, ServiceState};
use crate::telemetry::{Fnv, RuntimeReport};
use audit_game::detection::{SharedCacheStats, SharedPalCache};
use audit_game::error::GameError;
use audit_game::scenario::Scenario;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One tenant of the fleet: a named scenario instance with its own
/// runtime configuration (seed, horizon, drift gate, solver).
pub struct TenantSpec {
    /// Display name carried into the per-tenant report (and hashed into
    /// the fleet fingerprint).
    pub name: String,
    /// The tenant's registry scenario.
    pub scenario: Arc<dyn Scenario>,
    /// The tenant's service configuration.
    pub config: RuntimeConfig,
}

/// Fleet scheduling configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads pulling tenants within a scheduling round (`0` is
    /// treated as `1`). Never changes results, only wall-clock time.
    pub workers: usize,
    /// Share one prefix-state exchange across all tenants' solvers (see
    /// module docs). Bit-identical on or off.
    pub share_caches: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            share_caches: true,
        }
    }
}

/// One tenant's outcome: its full service report plus fleet-side
/// scheduling latencies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetTenantReport {
    /// The tenant's name from its [`TenantSpec`].
    pub tenant: String,
    /// The tenant's service report — bit-identical to running the tenant
    /// alone.
    pub report: RuntimeReport,
    /// Wall-clock milliseconds of the tenant's cold start (round 0).
    /// **Excluded from the fingerprint.**
    pub start_millis: f64,
    /// Wall-clock milliseconds of each epoch advance (rounds 1..).
    /// **Excluded from the fingerprint.**
    pub epoch_millis: Vec<f64>,
}

/// Aggregate outcome of one fleet run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReport {
    /// Worker threads the fleet ran with.
    pub workers: usize,
    /// Whether solver caches were shared across tenants.
    pub shared: bool,
    /// Per-tenant reports, in tenant order.
    pub tenants: Vec<FleetTenantReport>,
    /// Periods executed across all tenants.
    pub total_periods: usize,
    /// Wall-clock milliseconds of the whole run (cold starts included).
    /// **Excluded from the fingerprint.**
    pub wall_millis: f64,
    /// Aggregate throughput: `total_periods / wall seconds`. **Excluded
    /// from the fingerprint.**
    pub periods_per_sec: f64,
    /// Median per-period service latency (milliseconds), over every
    /// epoch advance of every tenant. **Excluded from the fingerprint.**
    pub latency_p50_millis: f64,
    /// 95th-percentile per-period latency. **Excluded.**
    pub latency_p95_millis: f64,
    /// 99th-percentile per-period latency. **Excluded.**
    pub latency_p99_millis: f64,
    /// Shared-exchange counters (zeros when sharing was off). **Excluded
    /// from the fingerprint** like every cache statistic.
    pub shared_cache: SharedCacheStats,
}

impl FleetReport {
    /// FNV-1a fingerprint of the fleet's deterministic outcome: the
    /// tenant count and, per tenant in order, its name and its
    /// [`RuntimeReport::fingerprint`]. Scheduling artifacts — worker
    /// count, sharing flag, latencies, cache counters — are excluded, so
    /// the fingerprint is invariant across worker counts, reruns, and
    /// cache sharing.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.word(self.tenants.len() as u64);
        for (i, t) in self.tenants.iter().enumerate() {
            h.word(i as u64);
            h.bytes(t.tenant.as_bytes());
            h.word(t.report.fingerprint());
        }
        h.finish()
    }

    /// Committed re-solves summed across tenants.
    pub fn total_resolves(&self) -> usize {
        self.tenants.iter().map(|t| t.report.resolves()).sum()
    }
}

/// Live scheduling state of one tenant between rounds.
struct TenantRun {
    service: AuditService,
    epochs: usize,
    state: Option<ServiceState>,
    stream: Vec<Vec<u64>>,
    start_millis: f64,
    epoch_millis: Vec<f64>,
    error: Option<GameError>,
}

/// The multi-tenant scheduler. See the module docs for the round model
/// and the determinism contract.
pub struct FleetService {
    tenants: Vec<TenantSpec>,
    config: FleetConfig,
}

impl FleetService {
    /// Build a fleet over `tenants`.
    pub fn new(tenants: Vec<TenantSpec>, config: FleetConfig) -> Self {
        Self { tenants, config }
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the fleet has no tenants (a degenerate but valid fleet:
    /// [`FleetService::run`] returns an empty report).
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Run every tenant to its horizon and aggregate the reports. The
    /// first error (by tenant order) aborts the run.
    pub fn run(&self) -> Result<FleetReport, GameError> {
        let t0 = Instant::now();
        let shared = self.config.share_caches.then(SharedPalCache::new);
        let runs: Vec<Mutex<TenantRun>> = self
            .tenants
            .iter()
            .map(|t| {
                let service = AuditService::new(Arc::clone(&t.scenario), t.config.clone());
                let service = match &shared {
                    Some(cache) => service.with_shared_cache(cache.clone()),
                    None => service,
                };
                Mutex::new(TenantRun {
                    service,
                    epochs: t.config.epochs,
                    state: None,
                    stream: Vec::new(),
                    start_millis: 0.0,
                    epoch_millis: Vec::new(),
                    error: None,
                })
            })
            .collect();

        let n = runs.len();
        let rounds = 1 + self
            .tenants
            .iter()
            .map(|t| t.config.epochs)
            .max()
            .unwrap_or(0);
        let workers = self.config.workers.max(1).min(n.max(1));
        for round in 0..rounds {
            if n == 0 {
                break;
            }
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let mut guard = runs[i].lock().expect("tenant slot poisoned");
                        let run = &mut *guard;
                        if run.error.is_some() {
                            continue;
                        }
                        let t = Instant::now();
                        if round == 0 {
                            match run
                                .service
                                .start_state()
                                .and_then(|st| run.service.full_alert_stream().map(|s| (st, s)))
                            {
                                Ok((st, stream)) => {
                                    run.state = Some(st);
                                    run.stream = stream;
                                    run.start_millis = millis_since(t);
                                }
                                Err(e) => run.error = Some(e),
                            }
                        } else {
                            let Some(state) = run.state.as_mut() else {
                                continue;
                            };
                            if state.epoch >= run.epochs {
                                continue; // tenant already at its horizon
                            }
                            let stop = state.epoch + 1;
                            match run.service.advance_with_stream(state, stop, &run.stream) {
                                Ok(()) => run.epoch_millis.push(millis_since(t)),
                                Err(e) => run.error = Some(e),
                            }
                        }
                    });
                }
            });
        }

        // Assemble in tenant order; surface the first error.
        let mut tenants = Vec::with_capacity(n);
        let mut latencies: Vec<f64> = Vec::new();
        let mut total_periods = 0usize;
        for (spec, slot) in self.tenants.iter().zip(runs) {
            let run = slot.into_inner().expect("tenant slot poisoned");
            if let Some(e) = run.error {
                return Err(e);
            }
            let state = run.state.expect("tenant never started");
            let report = run.service.report(state);
            total_periods += report.total_periods();
            let per_epoch = spec.config.periods_per_epoch.max(1) as f64;
            latencies.extend(run.epoch_millis.iter().map(|&m| m / per_epoch));
            tenants.push(FleetTenantReport {
                tenant: spec.name.clone(),
                report,
                start_millis: run.start_millis,
                epoch_millis: run.epoch_millis,
            });
        }
        let wall_millis = millis_since(t0);
        latencies.sort_by(f64::total_cmp);
        Ok(FleetReport {
            workers,
            shared: shared.is_some(),
            tenants,
            total_periods,
            wall_millis,
            periods_per_sec: if wall_millis > 0.0 {
                total_periods as f64 / (wall_millis / 1e3)
            } else {
                0.0
            },
            latency_p50_millis: percentile(&latencies, 50.0),
            latency_p95_millis: percentile(&latencies, 95.0),
            latency_p99_millis: percentile(&latencies, 99.0),
            shared_cache: shared.map(|s| s.stats()).unwrap_or_default(),
        })
    }
}

/// Nearest-rank percentile of an ascending-sorted sample (`0.0` when
/// empty).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn millis_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[3.0], 99.0), 3.0);
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
    }

    #[test]
    fn empty_fleet_reports_empty() {
        let fleet = FleetService::new(Vec::new(), FleetConfig::default());
        assert!(fleet.is_empty());
        let report = fleet.run().unwrap();
        assert_eq!(report.tenants.len(), 0);
        assert_eq!(report.total_periods, 0);
        assert_eq!(report.periods_per_sec, 0.0);
        // The empty fingerprint is stable: just the zero tenant count.
        assert_eq!(report.fingerprint(), {
            let mut h = Fnv::new();
            h.word(0);
            h.finish()
        });
    }
}
