//! Bounded second-chance (clock) cache used by the detection engine.
//!
//! The PR 2 engine wiped its whole estimate cache whenever an insertion
//! would exceed capacity — O(1) but brutal: one over-full batch destroyed
//! every hot entry. This replacement keeps a classic second-chance clock:
//! entries live in fixed slots, every hit sets a referenced bit, and an
//! insertion at capacity sweeps the clock hand forward, granting referenced
//! entries one more revolution and evicting the first unreferenced one.
//! Recurring entries (ISHM's revisited lattice points, CGGS's shared
//! prefixes) therefore survive indefinitely while one-shot entries churn.
//!
//! Everything is deterministic: the same sequence of `get`/`insert` calls
//! produces the same slot layout, hand position, and eviction count — the
//! engine performs lookups and insertions in batch order on a single
//! thread, so cache behaviour is identical at every worker count.

use std::collections::HashMap;
use std::hash::Hash;

struct Slot<K, V> {
    key: K,
    value: V,
    referenced: bool,
}

/// A fixed-capacity map with second-chance eviction.
pub(super) struct SecondChance<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    hand: usize,
    capacity: usize,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> SecondChance<K, V> {
    /// An empty cache holding at most `capacity` entries (`0` disables it:
    /// every `insert` is a no-op and every `get` misses).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            slots: Vec::new(),
            hand: 0,
            capacity,
            evictions: 0,
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Entries evicted by the clock since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Iterate the live entries in slot order. Slot order is a pure
    /// function of the `get`/`insert` history, so the iteration is as
    /// deterministic as the cache itself — the engine's cache-seed export
    /// rides this.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slots.iter().map(|s| (&s.key, &s.value))
    }

    /// Look up `key`, marking the entry as recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &i = self.map.get(key)?;
        self.slots[i].referenced = true;
        Some(&self.slots[i].value)
    }

    /// As [`SecondChance::get`], but returning the slot index. Combined
    /// with [`SecondChance::peek`] this lets a caller first register all
    /// its lookups (`&mut self`), then hold plain shared borrows of many
    /// values at once during a parallel phase — without cloning them.
    pub fn touch(&mut self, key: &K) -> Option<usize> {
        let &i = self.map.get(key)?;
        self.slots[i].referenced = true;
        Some(i)
    }

    /// The value in `slot` (an index previously returned by
    /// [`SecondChance::touch`]; slots never move between insertions).
    pub fn peek(&self, slot: usize) -> &V {
        &self.slots[slot].value
    }

    /// Insert or overwrite `key`. At capacity the clock hand sweeps
    /// forward: referenced slots get their bit cleared and one more
    /// revolution; the first unreferenced slot is evicted and reused.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            let slot = &mut self.slots[i];
            slot.value = value;
            slot.referenced = true;
            return;
        }
        if self.slots.len() < self.capacity {
            self.map.insert(key.clone(), self.slots.len());
            self.slots.push(Slot {
                key,
                value,
                // Fresh entries start unreferenced: only an actual hit
                // earns the second chance. Starting them referenced would
                // degenerate the first full sweep to FIFO and evict hot
                // entries that were touched between insertions.
                referenced: false,
            });
            return;
        }
        loop {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            let slot = &mut self.slots[i];
            if slot.referenced {
                slot.referenced = false;
                continue;
            }
            self.map.remove(&slot.key);
            self.evictions += 1;
            self.map.insert(key.clone(), i);
            slot.key = key;
            slot.value = value;
            slot.referenced = false;
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_capacity_never_stores() {
        let mut c: SecondChance<u32, u32> = SecondChance::new(0);
        c.insert(1, 10);
        assert_eq!(c.len(), 0);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn bounded_with_evictions_not_wipes() {
        let mut c: SecondChance<u32, u32> = SecondChance::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30); // evicts exactly one entry, never clears the rest
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.get(&3), Some(&30));
        // One of the two original entries must have survived.
        let survivors = [1u32, 2].iter().filter(|k| c.get(k).is_some()).count();
        assert_eq!(survivors, 1);
    }

    #[test]
    fn referenced_entries_survive_the_sweep() {
        let mut c: SecondChance<u32, u32> = SecondChance::new(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        // Keep touching 1: repeated insertions evict around it.
        for k in 4..20u32 {
            assert_eq!(c.get(&1), Some(&10));
            c.insert(k, k);
        }
        assert_eq!(c.get(&1), Some(&10), "hot entry was evicted");
        assert_eq!(c.len(), 3);
        assert!(c.evictions() >= 15);
    }

    #[test]
    fn overwriting_updates_in_place() {
        let mut c: SecondChance<u32, u32> = SecondChance::new(2);
        c.insert(1, 10);
        c.insert(1, 11);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut c: SecondChance<u32, u32> = SecondChance::new(4);
            let mut log = Vec::new();
            for i in 0..40u32 {
                if i % 3 == 0 {
                    log.push(c.get(&(i % 7)).copied());
                }
                c.insert(i % 11, i);
            }
            (log, c.evictions(), c.len())
        };
        assert_eq!(run(), run());
    }
}
