//! Alert profiles: fitted per-type count distributions plus audit costs —
//! the bridge from a labelled log to the game model's `F_t` and `C_t`.

use crate::log::AuditLog;
use crate::rules::RuleEngine;
use std::sync::Arc;
use stochastics::{fit_discretized_gaussian, fit_empirical, CountDistribution};

/// Which count model the profile fits per type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FitKind {
    /// Moment-fitted discretized Gaussian at 99.5% coverage (the paper's
    /// synthetic-model shape).
    #[default]
    Gaussian,
    /// Raw empirical distribution of the observed daily counts.
    Empirical,
}

/// Per-type alert statistics and fitted distributions derived from a log.
pub struct AlertProfile {
    /// Alert-type names (from the rule engine).
    pub type_names: Vec<String>,
    /// Daily observation series per type.
    pub observations: Vec<Vec<u64>>,
    /// Fitted count distributions per type.
    pub distributions: Vec<Arc<dyn CountDistribution>>,
    /// Sample means per type.
    pub means: Vec<f64>,
    /// Sample standard deviations per type.
    pub stds: Vec<f64>,
}

impl std::fmt::Debug for AlertProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlertProfile")
            .field("type_names", &self.type_names)
            .field("means", &self.means)
            .field("stds", &self.stds)
            .finish()
    }
}

impl AlertProfile {
    /// Fit a profile from a labelled log. Vocabulary gaps (unregistered
    /// rule combinations) are ignored for counting purposes — callers that
    /// care run the engine directly first.
    pub fn fit(log: &AuditLog, engine: &RuleEngine, kind: FitKind) -> Self {
        let observations = log.per_type_series(engine, |_, _| {});
        let type_names = (0..engine.n_types())
            .map(|t| engine.type_name(t).to_string())
            .collect();
        Self::from_observations(type_names, observations, kind)
    }

    /// Fit directly from per-type daily series.
    pub fn from_observations(
        type_names: Vec<String>,
        observations: Vec<Vec<u64>>,
        kind: FitKind,
    ) -> Self {
        assert_eq!(type_names.len(), observations.len());
        let mut distributions: Vec<Arc<dyn CountDistribution>> = Vec::new();
        let mut means = Vec::new();
        let mut stds = Vec::new();
        for obs in &observations {
            assert!(!obs.is_empty(), "each type needs at least one observed day");
            means.push(stochastics::fit::sample_mean(obs));
            stds.push(stochastics::fit::sample_std(obs));
            let dist: Arc<dyn CountDistribution> = match kind {
                FitKind::Gaussian => Arc::new(fit_discretized_gaussian(obs, 0.995)),
                FitKind::Empirical => Arc::new(fit_empirical(obs)),
            };
            distributions.push(dist);
        }
        Self {
            type_names,
            observations,
            distributions,
            means,
            stds,
        }
    }

    /// Number of alert types.
    pub fn n_types(&self) -> usize {
        self.type_names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AccessEvent, AttrValue, EntityId, RecordId};
    use crate::rules::{CombinationPolicy, Rule};

    fn build_log(per_day: &[u64]) -> (AuditLog, RuleEngine) {
        let engine = RuleEngine::new(vec![Rule::flag("r", "hit")], CombinationPolicy::FirstMatch);
        let mut log = AuditLog::new();
        for (day, &n) in per_day.iter().enumerate() {
            for i in 0..n {
                log.push(
                    AccessEvent::new(EntityId(i as u32), RecordId(i as u32), day as u32)
                        .with_attr("hit", AttrValue::Bool(true)),
                );
            }
            // Ensure the day exists even with zero alerts.
            log.push(AccessEvent::new(EntityId(9999), RecordId(0), day as u32));
        }
        (log, engine)
    }

    #[test]
    fn profile_recovers_observed_series() {
        let (log, engine) = build_log(&[3, 5, 4, 4]);
        let p = AlertProfile::fit(&log, &engine, FitKind::Empirical);
        assert_eq!(p.n_types(), 1);
        assert_eq!(p.observations[0], vec![3, 5, 4, 4]);
        assert!((p.means[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_fit_has_reasonable_support() {
        let (log, engine) = build_log(&[8, 10, 12, 9, 11, 10, 10, 9]);
        let p = AlertProfile::fit(&log, &engine, FitKind::Gaussian);
        let d = &p.distributions[0];
        assert!(
            d.support_max() >= 12,
            "support {} too tight",
            d.support_max()
        );
        assert!((d.mean() - p.means[0]).abs() < 0.5);
    }

    #[test]
    fn empirical_fit_matches_frequencies() {
        let (log, engine) = build_log(&[2, 2, 4]);
        let p = AlertProfile::fit(&log, &engine, FitKind::Empirical);
        let d = &p.distributions[0];
        assert!((d.pmf(2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((d.pmf(4) - 1.0 / 3.0).abs() < 1e-12);
    }
}
