//! Empirical game simulation: play the solved policy for many periods
//! against best-responding attackers and *measure* the auditor's loss.
//!
//! The LP pipeline predicts the loss analytically (through the `Pal`
//! approximation of eq. 1). This module provides the ground truth the
//! approximation targets: each period draws benign alert counts, the
//! attackers attack per their best responses, the auditor executes the
//! policy ([`crate::execute`]), and a caught attack pays `−M − K` while an
//! uncaught one pays `R − K`. Agreement between predicted and simulated
//! loss is the strongest end-to-end correctness check the library has
//! (see `tests/simulation_validation.rs`).

use crate::detection::{DetectionEstimator, PalEngine};
use crate::execute::{execute_policy, AuditPolicy, RealizedAlert};
use crate::model::GameSpec;
use crate::payoff::PayoffMatrix;
use rand::Rng;
use serde::{Deserialize, Serialize};
use stochastics::rng::stream_rng;

/// Aggregated outcome of a multi-period simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Periods simulated.
    pub n_periods: usize,
    /// Mean attacker surplus per period (the auditor's empirical loss).
    pub mean_loss: f64,
    /// Standard deviation of the per-period loss.
    pub loss_std: f64,
    /// Attacks launched (non-deterred attackers × periods).
    pub attacks: usize,
    /// Attacks whose alert was audited.
    pub caught: usize,
    /// Attacks that raised no alert at all (stochastic alert footprints).
    pub silent: usize,
    /// Mean benign alerts audited per period.
    pub mean_benign_audited: f64,
    /// Mean budget spent per period.
    pub mean_spent: f64,
}

impl SimulationReport {
    /// Empirical detection rate among alert-raising attacks.
    pub fn detection_rate(&self) -> f64 {
        let alerted = self.attacks - self.silent;
        if alerted == 0 {
            0.0
        } else {
            self.caught as f64 / alerted as f64
        }
    }
}

/// Simulate `n_periods` of auditing under `policy`.
///
/// Attackers play the best responses computed against the policy's order
/// mixture (the Stackelberg assumption: they observe the policy, not the
/// realized order). Each active attacker attacks every period with
/// probability `p_e`.
pub fn simulate_policy(
    spec: &GameSpec,
    policy: &AuditPolicy,
    est: &DetectionEstimator<'_>,
    n_periods: usize,
    seed: u64,
) -> SimulationReport {
    assert!(n_periods > 0, "need at least one period");
    // One-shot matrix build: batch the policy's support orders through an
    // uncached engine (identical results to the scalar path).
    let engine = PalEngine::uncached(*est, 1);
    let matrix =
        PayoffMatrix::build_with_engine(spec, &engine, policy.orders.clone(), &policy.thresholds);
    let responses = matrix.best_responses(spec, &policy.probs);

    let mut rng = stream_rng(seed, 0x51D);
    let mut losses = Vec::with_capacity(n_periods);
    let mut attacks = 0usize;
    let mut caught = 0usize;
    let mut silent = 0usize;
    let mut benign_audited_total = 0usize;
    let mut spent_total = 0.0;

    for period in 0..n_periods {
        let mut alerts: Vec<RealizedAlert> = Vec::new();
        let mut next_id = 0u64;

        // Benign workload.
        let z = draw_counts(spec, seed, period as u64);
        for (t, &count) in z.iter().enumerate() {
            for _ in 0..count {
                alerts.push(RealizedAlert {
                    alert_type: t,
                    id: next_id,
                });
                next_id += 1;
            }
        }
        let n_benign = alerts.len();

        // Attacks: each non-deterred attacker fires with probability p_e.
        // Remember which alert id belongs to which attack.
        let mut attack_alerts: Vec<(usize, Option<u64>, f64, f64, f64)> = Vec::new();
        for (e, att) in spec.attackers.iter().enumerate() {
            let Some(flat) = responses[e] else { continue };
            if !rng.gen_bool(att.attack_prob) {
                continue;
            }
            attacks += 1;
            let local = flat - matrix.index.range(e).start;
            let action = &att.actions[local];
            // Sample the alert type (or none) from the footprint.
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            let mut raised: Option<(usize, u64)> = None;
            for &(t, p) in &action.alert_probs {
                acc += p;
                if u < acc {
                    raised = Some((t, next_id));
                    alerts.push(RealizedAlert {
                        alert_type: t,
                        id: next_id,
                    });
                    next_id += 1;
                    break;
                }
            }
            attack_alerts.push((
                e,
                raised.map(|(_, id)| id),
                action.reward,
                action.attack_cost,
                action.penalty,
            ));
            if raised.is_none() {
                silent += 1;
            }
        }

        // The auditor runs the policy on the realized queue.
        let run = execute_policy(policy, spec, &alerts, &mut rng);
        spent_total += run.spent;

        // Settle payoffs.
        let mut period_loss = 0.0;
        let mut caught_this_period = 0usize;
        for &(_e, raised, reward, cost, penalty) in &attack_alerts {
            let was_caught = raised
                .map(|id| run.audited.iter().any(|ids| ids.binary_search(&id).is_ok()))
                .unwrap_or(false);
            if was_caught {
                caught_this_period += 1;
                period_loss += -penalty - cost;
            } else {
                period_loss += reward - cost;
            }
        }
        caught += caught_this_period;
        benign_audited_total += run.n_audited()
            - attack_alerts
                .iter()
                .filter(|&&(_, raised, ..)| {
                    raised
                        .map(|id| run.audited.iter().any(|ids| ids.binary_search(&id).is_ok()))
                        .unwrap_or(false)
                })
                .count();
        let _ = n_benign;
        losses.push(period_loss);
    }

    SimulationReport {
        n_periods,
        mean_loss: stochastics::stats::mean(&losses),
        loss_std: stochastics::stats::std_dev(&losses),
        attacks,
        caught,
        silent,
        mean_benign_audited: benign_audited_total as f64 / n_periods as f64,
        mean_spent: spent_total / n_periods as f64,
    }
}

/// Draw one period's benign counts from the spec's distributions.
fn draw_counts(spec: &GameSpec, seed: u64, period: u64) -> Vec<u64> {
    let mut rng = stream_rng(seed, 0xBEEF ^ period);
    spec.distributions
        .iter()
        .map(|d| d.sample(&mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::DetectionModel;
    use crate::model::{AttackAction, Attacker, GameSpecBuilder};
    use crate::ordering::AuditOrder;
    use std::sync::Arc;
    use stochastics::Constant;

    fn spec(budget: f64, opt_out: bool) -> GameSpec {
        let mut b = GameSpecBuilder::new();
        let t0 = b.alert_type("t0", 1.0, Arc::new(Constant(2)));
        let t1 = b.alert_type("t1", 1.0, Arc::new(Constant(2)));
        b.attacker(Attacker::new(
            "e0",
            1.0,
            vec![
                AttackAction::deterministic("v0", t0, 8.0, 0.5, 4.0),
                AttackAction::deterministic("v1", t1, 6.0, 0.5, 4.0),
            ],
        ));
        b.budget(budget);
        b.allow_opt_out(opt_out);
        b.build().unwrap()
    }

    fn policy_for(spec: &GameSpec) -> (AuditPolicy, stochastics::SampleBank) {
        let bank = spec.sample_bank(200, 1);
        (
            AuditPolicy::new(
                vec![2.0, 2.0],
                vec![
                    AuditOrder::identity(2),
                    AuditOrder::new(vec![1, 0]).unwrap(),
                ],
                vec![0.5, 0.5],
            ),
            bank,
        )
    }

    #[test]
    fn simulated_loss_matches_attack_inclusive_prediction() {
        // With tiny benign counts (Z_t = 2) the attack alert inflates the
        // queue materially, so the ground truth matches the
        // `AttackInclusive` detection model — and exposes the bias of the
        // paper's rare-attack approximation in this regime.
        let s = spec(2.0, false);
        let (policy, bank) = policy_for(&s);
        let est_incl = DetectionEstimator::new(&s, &bank, DetectionModel::AttackInclusive);
        let m_incl = PayoffMatrix::build(&s, &est_incl, policy.orders.clone(), &policy.thresholds);
        let predicted_incl = m_incl.loss_under_mixture(&s, &policy.probs);

        let est_paper = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let m_paper =
            PayoffMatrix::build(&s, &est_paper, policy.orders.clone(), &policy.thresholds);
        let predicted_paper = m_paper.loss_under_mixture(&s, &policy.probs);

        let report = simulate_policy(&s, &policy, &est_paper, 4000, 9);
        assert!(
            (report.mean_loss - predicted_incl).abs() < 0.25,
            "simulated {} vs attack-inclusive prediction {predicted_incl}",
            report.mean_loss
        );
        // The paper's approximation over-estimates detection (it divides by
        // Z_t instead of Z_t + 1), hence under-estimates the loss here.
        assert!(
            predicted_paper < report.mean_loss - 0.5,
            "expected rare-attack bias: paper {predicted_paper} vs simulated {}",
            report.mean_loss
        );
    }

    #[test]
    fn approximation_bias_vanishes_for_large_counts() {
        // With Z_t = 30 the attack alert is a 3% perturbation and the
        // paper's approximation agrees with the simulation.
        let mut b = GameSpecBuilder::new();
        let t0 = b.alert_type("t0", 1.0, Arc::new(Constant(30)));
        let t1 = b.alert_type("t1", 1.0, Arc::new(Constant(30)));
        b.attacker(Attacker::new(
            "e0",
            1.0,
            vec![
                AttackAction::deterministic("v0", t0, 8.0, 0.5, 4.0),
                AttackAction::deterministic("v1", t1, 6.0, 0.5, 4.0),
            ],
        ));
        b.budget(20.0);
        let s = b.build().unwrap();
        let bank = s.sample_bank(50, 1);
        let policy = AuditPolicy::new(
            vec![15.0, 15.0],
            vec![
                AuditOrder::identity(2),
                AuditOrder::new(vec![1, 0]).unwrap(),
            ],
            vec![0.5, 0.5],
        );
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let m = PayoffMatrix::build(&s, &est, policy.orders.clone(), &policy.thresholds);
        let predicted = m.loss_under_mixture(&s, &policy.probs);
        let report = simulate_policy(&s, &policy, &est, 4000, 3);
        assert!(
            (report.mean_loss - predicted).abs() < 0.3,
            "simulated {} vs predicted {predicted}",
            report.mean_loss
        );
    }

    #[test]
    fn full_coverage_catches_every_attack() {
        let s = spec(10.0, false);
        let (mut policy, bank) = policy_for(&s);
        policy.thresholds = vec![10.0, 10.0];
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let report = simulate_policy(&s, &policy, &est, 300, 2);
        assert_eq!(report.caught, report.attacks);
        assert!((report.detection_rate() - 1.0).abs() < 1e-12);
        // Attack caught every time → loss = −M − K = −4.5 per period.
        assert!((report.mean_loss + 4.5).abs() < 1e-9);
    }

    #[test]
    fn deterred_attackers_never_attack() {
        let s = spec(10.0, true); // full coverage + opt-out ⇒ deterrence
        let (mut policy, bank) = policy_for(&s);
        policy.thresholds = vec![10.0, 10.0];
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let report = simulate_policy(&s, &policy, &est, 200, 3);
        assert_eq!(report.attacks, 0);
        assert_eq!(report.mean_loss, 0.0);
    }

    #[test]
    fn budget_is_never_exceeded() {
        let s = spec(3.0, false);
        let (policy, bank) = policy_for(&s);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let report = simulate_policy(&s, &policy, &est, 100, 4);
        assert!(report.mean_spent <= 3.0 + 1e-9);
        assert!(report.attacks > 0);
    }

    #[test]
    fn attack_probability_thins_attacks() {
        let mut s = spec(2.0, false);
        s.attackers[0].attack_prob = 0.25;
        let (policy, bank) = policy_for(&s);
        let est = DetectionEstimator::new(&s, &bank, DetectionModel::PaperApprox);
        let report = simulate_policy(&s, &policy, &est, 2000, 5);
        let rate = report.attacks as f64 / 2000.0;
        assert!((rate - 0.25).abs() < 0.04, "attack rate {rate}");
    }
}
