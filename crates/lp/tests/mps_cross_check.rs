//! MPS round-trip on randomly generated models: writing a problem out and
//! parsing it back must preserve the optimum, the primal point (up to
//! degenerate alternatives), and the duals' objective certificate.

use lp_solver::{mps, Problem, Relation, Sense};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn mps_roundtrip_preserves_optimum(
        c in proptest::collection::vec(0.05f64..10.0, 4),
        a in proptest::collection::vec(proptest::collection::vec(0.1f64..5.0, 4), 3),
        b in proptest::collection::vec(0.0f64..20.0, 3),
        maximize in any::<bool>(),
    ) {
        // Covering (min/Ge) or packing (max/Le) so the model is always
        // feasible and bounded.
        let (sense, rel) = if maximize {
            (Sense::Maximize, Relation::Le)
        } else {
            (Sense::Minimize, Relation::Ge)
        };
        let mut p = Problem::new(sense);
        let xs: Vec<_> = c.iter().enumerate()
            .map(|(j, &cj)| p.add_var(format!("x{j}"), cj, 0.0, f64::INFINITY))
            .collect();
        for (i, row) in a.iter().enumerate() {
            let rhs = if maximize { b[i] + 0.5 } else { b[i] };
            let terms = xs.iter().copied().zip(row.iter().copied()).collect();
            p.add_constraint(format!("r{i}"), terms, rel, rhs);
        }

        let text = mps::to_mps(&p);
        let q = mps::from_mps(&text).unwrap();
        prop_assert_eq!(p.n_vars(), q.n_vars());
        prop_assert_eq!(p.n_constraints(), q.n_constraints());

        let sp = p.solve().unwrap();
        let sq = q.solve().unwrap();
        prop_assert!((sp.objective - sq.objective).abs() < 1e-7 * (1.0 + sp.objective.abs()),
            "objective drifted through MPS: {} vs {}", sp.objective, sq.objective);
        // The re-parsed model must accept the original optimal point.
        prop_assert!(q.max_violation(&sp.x) < 1e-7);
    }
}

#[test]
fn mps_of_a_game_master_is_reparsable() {
    // Serialize the attacker-mixture master LP of a real game instance and
    // make sure an external-solver-compatible artifact round-trips.
    let mut p = Problem::maximize();
    let mu = p.add_free_var("mu", 1.0);
    let ys: Vec<_> = (0..6)
        .map(|i| p.add_var(format!("y{i}"), 0.0, 0.0, f64::INFINITY))
        .collect();
    for e in 0..3 {
        p.add_constraint(
            format!("mass{e}"),
            vec![(ys[2 * e], 1.0), (ys[2 * e + 1], 1.0)],
            Relation::Eq,
            1.0,
        );
    }
    let utilities = [
        [3.0, -1.0, 2.0, 0.5, -2.0, 1.0],
        [-1.0, 2.5, 0.0, 1.5, 2.0, -0.5],
    ];
    for (o, row) in utilities.iter().enumerate() {
        let mut terms = vec![(mu, 1.0)];
        for (i, &u) in row.iter().enumerate() {
            terms.push((ys[i], -u));
        }
        p.add_constraint(format!("order{o}"), terms, Relation::Le, 0.0);
    }
    let text = mps::to_mps(&p);
    assert!(text.contains("ENDATA"));
    let q = mps::from_mps(&text).unwrap();
    let sp = p.solve().unwrap();
    let sq = q.solve().unwrap();
    assert!((sp.objective - sq.objective).abs() < 1e-8);
}
