//! Discrete stochastic substrate for the alert-audit workspace.
//!
//! The alert-prioritization game of Yan et al. (ICDE 2018) is driven by the
//! distribution `F_t(n)` of the number of *benign* alerts of each type `t`
//! raised per audit period. This crate provides:
//!
//! * [`CountDistribution`] — the trait every alert-count model implements
//!   (pmf, cdf `F_t`, sampling, coverage bounds);
//! * concrete models: [`DiscretizedGaussian`] (the paper's synthetic model),
//!   [`Empirical`] (fit from logs, used for the real-data experiments),
//!   [`Poisson`], [`Constant`], and [`UniformCount`];
//! * [`bank::SampleBank`] — pre-drawn matrices of joint count realizations
//!   `Z = (Z_1, …, Z_|T|)` so that every candidate audit policy inside one
//!   search is evaluated under *common random numbers*;
//! * [`fit`] — maximum-likelihood / moment fitting of count models from
//!   observed per-period alert counts;
//! * [`stats`] — summary statistics used by the experiment harness.
//!
//! Everything is deterministic given a seed; no global RNG state is used.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bank;
pub mod discrete;
pub mod fit;
pub mod gof;
pub mod normal;
pub mod rng;
pub mod snapshot;
pub mod stats;

pub use bank::{BankChunk, JointCountModel, SampleBank};
pub use discrete::{
    Constant, CountDistribution, DiscretizedGaussian, Empirical, Mixture, Poisson, UniformCount,
    Zipf,
};
pub use fit::{fit_discretized_gaussian, fit_empirical, fit_gaussian_from_moments};
pub use rng::seeded_rng;
pub use snapshot::{DistParams, JointParams, Snapshot, SnapshotError};
pub use stats::StreamingMoments;
