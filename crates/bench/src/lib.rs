//! Experiment harness for the alert-audit reproduction.
//!
//! One binary per table/figure of the paper (see `src/bin/`), built on the
//! shared runners in this library:
//!
//! * [`report`] — plain-text/markdown table rendering;
//! * [`syn_experiments`] — Syn A sweeps (Tables III–VII, Section IV.C);
//! * [`real_experiments`] — Rea A / Rea B budget sweeps (Figures 1–2);
//! * [`defaults`] — the budget grids and seeds shared across binaries.
//!
//! Every runner takes explicit seeds and sample counts so results are
//! reproducible; the binaries print the same rows/series the paper reports.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod defaults;
pub mod real_experiments;
pub mod report;
pub mod syn_experiments;
