//! End-to-end smoke test: the `exp_fig2` experiment binary (Rea B budget
//! sweep with baselines) must run on a tiny configuration with an explicit
//! `--scenario` selection and emit every series column.

use std::process::Command;

#[test]
fn exp_fig2_runs_end_to_end_on_tiny_config() {
    let exe = env!("CARGO_BIN_EXE_exp_fig2");
    let out = Command::new(exe)
        .args(["10", "30", "2", "2", "--scenario", "credit-reab"])
        .output()
        .expect("exp_fig2 spawns");
    assert!(
        out.status.success(),
        "exp_fig2 exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for column in [
        "proposed(eps=0.1)",
        "proposed(eps=0.2)",
        "proposed(eps=0.3)",
        "random-thresholds",
        "random-orders",
        "greedy-benefit",
    ] {
        assert!(
            stdout.contains(column),
            "missing column {column}:\n{stdout}"
        );
    }
    assert!(
        stdout.lines().any(|l| l.starts_with("| 10 ")),
        "missing data row for budget 10:\n{stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("scenario credit-reab"),
        "stderr should echo the resolved scenario:\n{stderr}"
    );
}

#[test]
fn exp_fig2_rejects_unknown_scenario_with_key_list() {
    let exe = env!("CARGO_BIN_EXE_exp_fig2");
    let out = Command::new(exe)
        .args(["10", "30", "2", "2", "--scenario", "no-such-scenario"])
        .output()
        .expect("exp_fig2 spawns");
    assert!(!out.status.success(), "unknown scenario must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no-such-scenario") && stderr.contains("credit-reab"),
        "error should name the bad key and list known keys:\n{stderr}"
    );
}
