//! One-call facade combining ISHM (threshold search) with an inner LP
//! evaluator (exact enumeration, CGGS, or the planner's type-cluster
//! decomposition) — the full pipeline of the paper plus the wide-type
//! scale-out of [`crate::planner`].

use crate::cggs::CggsConfig;
use crate::detection::{
    shared_bank_key, CacheStats, DetectionEstimator, DetectionModel, PalEngine, SharedPalCache,
};
use crate::error::GameError;
use crate::execute::AuditPolicy;
use crate::ishm::{CggsEvaluator, ExactEvaluator, Ishm, IshmConfig, IshmOutcome, SearchStats};
use crate::master::MasterSolution;
use crate::model::GameSpec;
use crate::ordering::AuditOrder;
use crate::planner::{self, DecomposedEvaluator, InstanceFeatures, SolveStrategy};
use serde::{Deserialize, Serialize};

/// Which inner LP strategy evaluates threshold candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum InnerKind {
    /// Let the planner choose from the instance's hardness features
    /// ([`crate::planner::plan`]): exact order enumeration up to
    /// [`crate::planner::EXACT_MAX_TYPES`] alert types, column generation
    /// up to [`crate::planner::ISHM_FULL_MAX_TYPES`], and the level-capped
    /// type-cluster decomposition beyond.
    #[default]
    Auto,
    /// Materialize all `|T|!` orderings (small `|T|` only).
    Exact,
    /// Column Generation Greedy Search (Algorithm 1).
    Cggs,
    /// Force the planner's type-cluster decomposed evaluator
    /// ([`crate::planner::DecomposedEvaluator`]) at any width. Tractable
    /// everywhere: at ≤ [`crate::planner::EXACT_MAX_TYPES`] types its pool
    /// is the full enumeration (bit-identical to [`InnerKind::Exact`]),
    /// and past [`crate::planner::ISHM_FULL_MAX_TYPES`] it adopts the
    /// planner's outer-search level cap.
    Decomposed,
}

/// Facade configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolverConfig {
    /// ISHM step size ε.
    pub epsilon: f64,
    /// Monte-Carlo sample count for `Pal` estimation.
    pub n_samples: usize,
    /// RNG seed (sample bank; everything downstream is deterministic).
    pub seed: u64,
    /// Inner LP strategy.
    pub inner: InnerKind,
    /// Detection-probability variant.
    pub detection: DetectionModel,
    /// Merge strategically identical attack actions before solving.
    pub dedup_actions: bool,
    /// Worker threads for batched `Pal` evaluation. Results are identical
    /// at every thread count (see [`crate::detection::PalEngine`]).
    pub threads: usize,
    /// Deterministic work budget per solve rung: a cap on inner LP
    /// evaluations of the ISHM shrink search
    /// ([`crate::ishm::IshmConfig::eval_budget`] — a counter, never
    /// wall-clock, so budgeted solves stay bit-reproducible). When the
    /// planned strategy exhausts the budget the solver descends the
    /// degradation ladder (Exact → Cggs → Decomposed), giving each rung
    /// the same allowance; the first rung that converges in budget is
    /// committed, and [`AuditSolution::degrade`] records the descent. If
    /// every rung exhausts, the final (cheapest) rung's best-in-budget
    /// policy — always feasible, since the start vector is always
    /// evaluated — is committed as `DegradeReason::Truncated`. `None`
    /// (the default) disables the ladder and is bit-identical to the
    /// unbudgeted solver.
    pub work_budget: Option<usize>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            epsilon: 0.1,
            n_samples: 500,
            seed: 0,
            inner: InnerKind::Auto,
            detection: DetectionModel::PaperApprox,
            dedup_actions: true,
            threads: 1,
            work_budget: None,
        }
    }
}

/// Why (and how far) a budgeted solve degraded from its planned strategy.
/// Recorded on [`AuditSolution::degrade`] and carried into the runtime's
/// fingerprinted telemetry, so degraded epochs are grep-able and chaos runs
/// reproduce bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradeReason {
    /// The planned strategy exhausted its work budget; the solve walked
    /// `tiers` rungs down the Exact → Cggs → Decomposed ladder before a
    /// rung converged within budget (`tiers ≥ 1`).
    Degraded {
        /// Rungs descended below the planned strategy.
        tiers: usize,
    },
    /// Every ladder rung exhausted the budget; the final rung's
    /// best-in-budget policy was committed.
    Truncated,
    /// The scheduled re-solve failed outright and the runtime re-committed
    /// the incumbent policy instead (recorded by `audit-runtime`, never by
    /// the solver itself).
    KeptIncumbent,
}

impl DegradeReason {
    /// Stable short key for telemetry, JSON, and grep lines.
    pub fn key(&self) -> String {
        match self {
            DegradeReason::Degraded { tiers } => format!("degraded:{tiers}"),
            DegradeReason::Truncated => "truncated".into(),
            DegradeReason::KeptIncumbent => "kept-incumbent".into(),
        }
    }

    /// Stable numeric code for fingerprinting (`Degraded{tiers}` maps to
    /// `16 + tiers` so distinct descents hash apart).
    pub fn code(&self) -> u64 {
        match self {
            DegradeReason::Degraded { tiers } => 16 + *tiers as u64,
            DegradeReason::Truncated => 1,
            DegradeReason::KeptIncumbent => 2,
        }
    }
}

/// Warm-start state carried from a previous solve into the next one: the
/// ISHM search starts from `thresholds` (instead of full coverage) and the
/// CGGS restricted master is seeded with `orders` (instead of one pure
/// strategy). Both seams are individually optional and individually
/// bit-identical to a cold solve when empty — see
/// [`crate::ishm::IshmConfig::initial_thresholds`] and
/// [`crate::cggs::CggsConfig::seed_columns`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WarmStart {
    /// Starting threshold vector (clamped to the new game's upper bounds);
    /// `None` starts ISHM from full coverage as usual.
    pub thresholds: Option<Vec<f64>>,
    /// Column pool seeding the CGGS restricted master; infeasible or
    /// duplicate entries are skipped, and the exact inner evaluator (which
    /// materializes every order anyway) ignores it.
    pub orders: Vec<AuditOrder>,
}

impl WarmStart {
    /// Warm-start state from a previously solved policy: the ISHM search
    /// starts exactly at the incumbent thresholds (its first evaluation
    /// reproduces the incumbent objective, so the re-solve can only match
    /// or improve it) and the policy's support orders seed the CGGS
    /// column pool. Callers re-solving after an *upward* workload drift
    /// should first rescale the thresholds toward the new full-coverage
    /// bounds (see `audit-runtime`), since the shrink search never raises
    /// a threshold above its starting point.
    pub fn from_policy(policy: &AuditPolicy) -> Self {
        Self {
            thresholds: Some(policy.thresholds.clone()),
            orders: policy.orders.clone(),
        }
    }
}

/// The solved audit policy plus diagnostics.
#[derive(Debug, Clone)]
pub struct AuditSolution {
    /// Deployable policy (thresholds + mixed orders).
    pub policy: AuditPolicy,
    /// Auditor's optimal (heuristic) loss.
    pub loss: f64,
    /// Master solution at the chosen thresholds.
    pub master: MasterSolution,
    /// ISHM search counters.
    pub stats: SearchStats,
    /// Detection-engine counters of the solve (estimate/prefix-state cache
    /// hits, evictions, trie column passes) — the observability behind the
    /// `--cache-stats` flag of the experiment drivers.
    pub cache: CacheStats,
    /// The inner strategy that produced this solution — `exact`, `cggs`,
    /// or a clustered decomposition with its outer level cap. Under a
    /// binding work budget this can sit *below* the planner's pick: it is
    /// the ladder rung actually committed.
    pub strategy: SolveStrategy,
    /// `Some` when a work budget forced this solve off its planned
    /// strategy (ladder descent or truncation); `None` on an unbudgeted or
    /// within-budget solve.
    pub degrade: Option<DegradeReason>,
}

/// High-level OAP solver.
#[derive(Debug, Clone)]
pub struct OapSolver {
    /// Configuration.
    pub config: SolverConfig,
    /// Optional exchange of prefix-state snapshots across solves whose
    /// banks coincide (see [`SharedPalCache`]). `None` (the default) is
    /// the isolated path.
    shared: Option<SharedPalCache>,
}

impl OapSolver {
    /// Construct with a configuration.
    pub fn new(config: SolverConfig) -> Self {
        Self {
            config,
            shared: None,
        }
    }

    /// Attach a shared prefix-state exchange: before a solve, a snapshot
    /// published under this solver's [`shared_bank_key`] is adopted into
    /// the fresh engine; after the solve, the engine's states are
    /// published back. Adoption is bit-identical to solving isolated —
    /// only wall-clock and cache counters change. The exchange engages on
    /// the [`OapSolver::solve`]/[`OapSolver::solve_warm`] paths, where the
    /// bank provably derives from `(spec, n_samples, seed)`; the
    /// explicit-bank path stays isolated, since an arbitrary caller bank
    /// has no sound shared key.
    pub fn with_shared_cache(mut self, shared: SharedPalCache) -> Self {
        self.shared = Some(shared);
        self
    }

    /// The [`shared_bank_key`] this solver publishes and adopts under when
    /// solving `spec` — over the *working* (dedup-applied) spec, since
    /// that is what the engine evaluates. Exposed so sibling evaluators of
    /// the same game (e.g. the runtime's predicted-`Pal` pass) can join
    /// the exchange under the identical key.
    pub fn share_key(&self, spec: &GameSpec) -> u64 {
        let working = if self.config.dedup_actions {
            spec.dedup_actions()
        } else {
            spec.clone()
        };
        self.working_share_key(&working)
    }

    fn working_share_key(&self, working: &GameSpec) -> u64 {
        shared_bank_key(
            working,
            self.config.n_samples,
            self.config.seed,
            self.config.detection,
        )
    }

    /// Solve the full OAP: ISHM over thresholds with the configured inner
    /// evaluator, returning a deployable policy.
    pub fn solve(&self, spec: &GameSpec) -> Result<AuditSolution, GameError> {
        self.solve_warm(spec, None)
    }

    /// Solve the full OAP, optionally warm-started from a previous
    /// solution. `None` (and an empty [`WarmStart`]) is bit-identical to
    /// [`OapSolver::solve`]; a populated warm start begins the ISHM search
    /// at the carried thresholds and seeds the CGGS restricted master with
    /// the carried order columns — the cheap re-solve path the online
    /// runtime takes when workload drift invalidates the committed policy.
    pub fn solve_warm(
        &self,
        spec: &GameSpec,
        warm: Option<&WarmStart>,
    ) -> Result<AuditSolution, GameError> {
        spec.validate()?;
        if self.config.n_samples == 0 {
            return Err(GameError::InvalidConfig(
                "n_samples must be positive".into(),
            ));
        }
        let working = if self.config.dedup_actions {
            spec.dedup_actions()
        } else {
            spec.clone()
        };
        let bank = working.sample_bank(self.config.n_samples, self.config.seed);
        let share_key = self
            .shared
            .as_ref()
            .map(|_| self.working_share_key(&working));
        self.solve_ladder(spec, &working, &bank, warm, share_key)
    }

    /// Solve on an explicitly supplied common-random-number bank instead
    /// of regenerating one from `(n_samples, seed)` — the entry point of
    /// the snapshot path. With a bank equal to
    /// `spec.sample_bank(config.n_samples, config.seed)` (which is what a
    /// verified scenario snapshot holds — dedup merges actions, never
    /// distributions, so the working spec draws the identical bank) the
    /// result is bit-identical to [`OapSolver::solve_warm`].
    pub fn solve_with_bank(
        &self,
        spec: &GameSpec,
        bank: &stochastics::SampleBank,
        warm: Option<&WarmStart>,
    ) -> Result<AuditSolution, GameError> {
        spec.validate()?;
        if bank.n_types() != spec.n_types() {
            return Err(GameError::InvalidConfig(format!(
                "bank covers {} types but the game has {}",
                bank.n_types(),
                spec.n_types()
            )));
        }
        let working = if self.config.dedup_actions {
            spec.dedup_actions()
        } else {
            spec.clone()
        };
        self.solve_ladder(spec, &working, bank, warm, None)
    }

    /// The inner strategy this solve will run: the configured
    /// [`InnerKind`] taken literally, with `Auto` delegated to the
    /// hardness-aware planner policy and `Decomposed` to its forced
    /// variant (both read the instance features of the raw/working pair).
    pub fn strategy_for(&self, raw: &GameSpec, working: &GameSpec) -> SolveStrategy {
        match self.config.inner {
            InnerKind::Exact => SolveStrategy::Exact,
            InnerKind::Cggs => SolveStrategy::Cggs,
            InnerKind::Auto => {
                planner::plan(&InstanceFeatures::of(raw, working, self.config.n_samples))
            }
            InnerKind::Decomposed => planner::decomposed_strategy(&InstanceFeatures::of(
                raw,
                working,
                self.config.n_samples,
            )),
        }
    }

    /// Adopt a published prefix-state snapshot into `engine`, when sharing
    /// is engaged for this solve.
    fn adopt_shared(&self, share_key: Option<u64>, engine: &PalEngine<'_>) {
        if let (Some(shared), Some(key)) = (&self.shared, share_key) {
            if let Some(seed) = shared.get(key) {
                engine.adopt_states(&seed);
            }
        }
    }

    /// Publish `engine`'s prefix-state snapshot for later solves over the
    /// same bank, when sharing is engaged for this solve.
    fn publish_shared(&self, share_key: Option<u64>, engine: &PalEngine<'_>) {
        if let (Some(shared), Some(key)) = (&self.shared, share_key) {
            shared.publish(key, engine.export_states());
        }
    }

    /// The Exact → Cggs → Decomposed rung sequence a budgeted solve of
    /// this instance walks: the planned strategy first, then every
    /// strictly cheaper tier. A solve planned `Decomposed` is already on
    /// the cheapest rung.
    fn ladder_for(&self, raw: &GameSpec, working: &GameSpec) -> Vec<SolveStrategy> {
        let planned = self.strategy_for(raw, working);
        let decomposed = || {
            planner::decomposed_strategy(&InstanceFeatures::of(raw, working, self.config.n_samples))
        };
        match planned {
            SolveStrategy::Exact => vec![planned, SolveStrategy::Cggs, decomposed()],
            SolveStrategy::Cggs => vec![planned, decomposed()],
            SolveStrategy::Decomposed { .. } => vec![planned],
        }
    }

    /// Budget-aware solve: without a work budget this is exactly one run
    /// of the planned strategy (bit-identical to the pre-ladder solver);
    /// with one, each rung of [`OapSolver::ladder_for`] gets the full
    /// allowance and the first rung that converges within it is committed.
    /// Total work is therefore bounded by `rungs × budget` evaluations —
    /// still deterministic, and in the worst case the final rung's
    /// best-in-budget policy ships as [`DegradeReason::Truncated`].
    fn solve_ladder(
        &self,
        raw: &GameSpec,
        working: &GameSpec,
        bank: &stochastics::SampleBank,
        warm: Option<&WarmStart>,
        share_key: Option<u64>,
    ) -> Result<AuditSolution, GameError> {
        let Some(budget) = self.config.work_budget else {
            let strategy = self.strategy_for(raw, working);
            return self.solve_on(working, bank, warm, share_key, strategy, None);
        };
        let ladder = self.ladder_for(raw, working);
        let last = ladder.len() - 1;
        for (tier, strategy) in ladder.into_iter().enumerate() {
            let sol = self.solve_on(working, bank, warm, share_key, strategy, Some(budget))?;
            if !sol.stats.budget_exhausted {
                return Ok(AuditSolution {
                    degrade: (tier > 0).then_some(DegradeReason::Degraded { tiers: tier }),
                    ..sol
                });
            }
            if tier == last {
                return Ok(AuditSolution {
                    degrade: Some(DegradeReason::Truncated),
                    ..sol
                });
            }
        }
        unreachable!("ladder is never empty")
    }

    /// Shared solve pipeline over a prepared (deduped) spec and bank,
    /// running the planner-selected `strategy` under an optional
    /// evaluation budget.
    fn solve_on(
        &self,
        working: &GameSpec,
        bank: &stochastics::SampleBank,
        warm: Option<&WarmStart>,
        share_key: Option<u64>,
        strategy: SolveStrategy,
        eval_budget: Option<usize>,
    ) -> Result<AuditSolution, GameError> {
        let est = DetectionEstimator::new(working, bank, self.config.detection);
        let ishm = Ishm::new(IshmConfig {
            epsilon: self.config.epsilon,
            initial_thresholds: warm.and_then(|w| w.thresholds.clone()),
            max_level: strategy.level_cap(),
            eval_budget,
            ..Default::default()
        });

        let (outcome, cache): (IshmOutcome, CacheStats) = match strategy {
            SolveStrategy::Exact => {
                let mut eval = ExactEvaluator::with_threads(working, est, self.config.threads);
                self.adopt_shared(share_key, eval.engine());
                let outcome = ishm.solve(working, &mut eval)?;
                self.publish_shared(share_key, eval.engine());
                let cache = eval.engine().cache_stats();
                (outcome, cache)
            }
            SolveStrategy::Cggs => {
                let mut eval = CggsEvaluator::new(
                    working,
                    est,
                    CggsConfig {
                        threads: self.config.threads,
                        seed_columns: warm.map(|w| w.orders.clone()).unwrap_or_default(),
                        ..Default::default()
                    },
                );
                self.adopt_shared(share_key, eval.engine());
                let outcome = ishm.solve(working, &mut eval)?;
                self.publish_shared(share_key, eval.engine());
                let cache = eval.engine().cache_stats();
                (outcome, cache)
            }
            SolveStrategy::Decomposed { .. } => {
                let mut eval = DecomposedEvaluator::new(
                    working,
                    est,
                    self.config.threads,
                    warm.map(|w| w.orders.clone()).unwrap_or_default(),
                );
                self.adopt_shared(share_key, eval.engine());
                let outcome = ishm.solve(working, &mut eval)?;
                self.publish_shared(share_key, eval.engine());
                let cache = eval.engine().cache_stats();
                (outcome, cache)
            }
        };

        let policy = AuditPolicy::new(
            outcome.thresholds.clone(),
            outcome.orders.clone(),
            outcome.master.p_orders.clone(),
        );
        Ok(AuditSolution {
            policy,
            loss: outcome.value,
            master: outcome.master,
            stats: outcome.stats,
            cache,
            strategy,
            degrade: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{random_game, RandomGameConfig};

    #[test]
    fn facade_solves_random_game_end_to_end() {
        let spec = random_game(&RandomGameConfig::default(), 5);
        let solver = OapSolver::new(SolverConfig {
            n_samples: 100,
            epsilon: 0.25,
            ..Default::default()
        });
        let sol = solver.solve(&spec).unwrap();
        assert!(sol.loss.is_finite());
        assert!(sol.loss <= spec.max_possible_loss() + 1e-9);
        let psum: f64 = sol.policy.probs.iter().sum();
        assert!((psum - 1.0).abs() < 1e-6);
        assert_eq!(sol.policy.thresholds.len(), spec.n_types());
        assert!(sol.stats.thresholds_explored > 0);
    }

    #[test]
    fn exact_and_auto_agree_on_small_games() {
        let spec = random_game(&RandomGameConfig::default(), 11);
        let auto = OapSolver::new(SolverConfig {
            n_samples: 80,
            epsilon: 0.25,
            inner: InnerKind::Auto,
            ..Default::default()
        })
        .solve(&spec)
        .unwrap();
        let exact = OapSolver::new(SolverConfig {
            n_samples: 80,
            epsilon: 0.25,
            inner: InnerKind::Exact,
            ..Default::default()
        })
        .solve(&spec)
        .unwrap();
        assert!((auto.loss - exact.loss).abs() < 1e-9);
    }

    #[test]
    fn forced_decomposed_is_bit_identical_to_exact_on_small_games() {
        let spec = random_game(&RandomGameConfig::default(), 41);
        let base = SolverConfig {
            n_samples: 80,
            epsilon: 0.25,
            ..Default::default()
        };
        let exact = OapSolver::new(SolverConfig {
            inner: InnerKind::Exact,
            ..base.clone()
        })
        .solve(&spec)
        .unwrap();
        let dec = OapSolver::new(SolverConfig {
            inner: InnerKind::Decomposed,
            ..base
        })
        .solve(&spec)
        .unwrap();
        assert_eq!(exact.loss.to_bits(), dec.loss.to_bits());
        assert_eq!(exact.policy.thresholds, dec.policy.thresholds);
        assert_eq!(exact.policy.orders, dec.policy.orders);
        assert_eq!(exact.policy.probs, dec.policy.probs);
        assert_eq!(
            exact.stats.thresholds_explored,
            dec.stats.thresholds_explored
        );
        assert!(matches!(dec.strategy, SolveStrategy::Decomposed { .. }));
        assert_eq!(exact.strategy, SolveStrategy::Exact);
    }

    #[test]
    fn auto_reports_the_planner_strategy() {
        let small = random_game(&RandomGameConfig::default(), 5);
        let sol = OapSolver::new(SolverConfig {
            n_samples: 60,
            epsilon: 0.25,
            ..Default::default()
        })
        .solve(&small)
        .unwrap();
        assert_eq!(sol.strategy, SolveStrategy::Exact);

        let medium = random_game(
            &RandomGameConfig {
                n_types: 7,
                ..Default::default()
            },
            5,
        );
        let sol = OapSolver::new(SolverConfig {
            n_samples: 40,
            epsilon: 0.5,
            ..Default::default()
        })
        .solve(&medium)
        .unwrap();
        assert_eq!(sol.strategy, SolveStrategy::Cggs);
    }

    #[test]
    fn dedup_preserves_value() {
        let cfg = RandomGameConfig {
            n_victims: 12, // plenty of duplicate (type, payoff) actions
            ..Default::default()
        };
        let spec = random_game(&cfg, 3);
        let base = SolverConfig {
            n_samples: 80,
            epsilon: 0.3,
            ..Default::default()
        };
        let with = OapSolver::new(SolverConfig {
            dedup_actions: true,
            ..base.clone()
        })
        .solve(&spec)
        .unwrap();
        let without = OapSolver::new(SolverConfig {
            dedup_actions: false,
            ..base
        })
        .solve(&spec)
        .unwrap();
        assert!(
            (with.loss - without.loss).abs() < 1e-7,
            "dedup changed the value: {} vs {}",
            with.loss,
            without.loss
        );
    }

    #[test]
    fn thread_count_does_not_change_the_solution() {
        let spec = random_game(&RandomGameConfig::default(), 17);
        let base = SolverConfig {
            n_samples: 60,
            epsilon: 0.25,
            ..Default::default()
        };
        let solo = OapSolver::new(base.clone()).solve(&spec).unwrap();
        for threads in [2usize, 4] {
            let multi = OapSolver::new(SolverConfig {
                threads,
                ..base.clone()
            })
            .solve(&spec)
            .unwrap();
            assert_eq!(solo.loss, multi.loss, "threads {threads}");
            assert_eq!(solo.policy.thresholds, multi.policy.thresholds);
            assert_eq!(solo.policy.probs, multi.policy.probs);
        }
    }

    #[test]
    fn empty_warm_start_is_bit_identical_to_cold_solve() {
        let spec = random_game(&RandomGameConfig::default(), 23);
        let cfg = SolverConfig {
            n_samples: 60,
            epsilon: 0.25,
            ..Default::default()
        };
        for inner in [InnerKind::Exact, InnerKind::Cggs, InnerKind::Decomposed] {
            let solver = OapSolver::new(SolverConfig {
                inner,
                ..cfg.clone()
            });
            let cold = solver.solve(&spec).unwrap();
            let warm = solver
                .solve_warm(&spec, Some(&WarmStart::default()))
                .unwrap();
            assert_eq!(cold.loss.to_bits(), warm.loss.to_bits(), "{inner:?}");
            assert_eq!(cold.policy.thresholds, warm.policy.thresholds);
            assert_eq!(cold.policy.orders, warm.policy.orders);
            assert_eq!(cold.policy.probs, warm.policy.probs);
        }
    }

    #[test]
    fn warm_start_from_own_solution_matches_cold_objective() {
        let spec = random_game(&RandomGameConfig::default(), 29);
        let solver = OapSolver::new(SolverConfig {
            n_samples: 60,
            epsilon: 0.25,
            inner: InnerKind::Cggs,
            ..Default::default()
        });
        let cold = solver.solve(&spec).unwrap();
        let warm = solver
            .solve_warm(&spec, Some(&WarmStart::from_policy(&cold.policy)))
            .unwrap();
        // Warm starts at the incumbent, so its first evaluation reproduces
        // the cold optimum; further shrinks can only improve on it.
        assert!(
            warm.loss <= cold.loss + 1e-9,
            "warm {} vs cold {}",
            warm.loss,
            cold.loss
        );
        assert!(
            warm.stats.thresholds_explored <= cold.stats.thresholds_explored,
            "warm explored {} > cold {}",
            warm.stats.thresholds_explored,
            cold.stats.thresholds_explored
        );
    }

    #[test]
    fn explicit_bank_is_bit_identical_to_regeneration() {
        let spec = random_game(&RandomGameConfig::default(), 31);
        for inner in [InnerKind::Exact, InnerKind::Cggs, InnerKind::Decomposed] {
            let solver = OapSolver::new(SolverConfig {
                n_samples: 60,
                epsilon: 0.25,
                inner,
                ..Default::default()
            });
            let implicit = solver.solve(&spec).unwrap();
            let bank = spec.sample_bank(60, 0);
            let explicit = solver.solve_with_bank(&spec, &bank, None).unwrap();
            assert_eq!(
                implicit.loss.to_bits(),
                explicit.loss.to_bits(),
                "{inner:?}"
            );
            assert_eq!(implicit.policy.thresholds, explicit.policy.thresholds);
            assert_eq!(implicit.policy.orders, explicit.policy.orders);
            assert_eq!(implicit.policy.probs, explicit.policy.probs);
        }
    }

    #[test]
    fn shared_cache_adoption_is_bit_identical() {
        let spec = random_game(&RandomGameConfig::default(), 37);
        let cfg = SolverConfig {
            n_samples: 60,
            epsilon: 0.25,
            ..Default::default()
        };
        for inner in [InnerKind::Exact, InnerKind::Cggs] {
            let cfg = SolverConfig {
                inner,
                ..cfg.clone()
            };
            let baseline = OapSolver::new(cfg.clone()).solve(&spec).unwrap();

            let shared = SharedPalCache::new();
            let solver = OapSolver::new(cfg).with_shared_cache(shared.clone());
            // First shared solve publishes; second adopts the snapshot.
            let first = solver.solve(&spec).unwrap();
            let second = solver.solve(&spec).unwrap();
            for sol in [&first, &second] {
                assert_eq!(sol.loss.to_bits(), baseline.loss.to_bits(), "{inner:?}");
                assert_eq!(sol.policy.thresholds, baseline.policy.thresholds);
                assert_eq!(sol.policy.orders, baseline.policy.orders);
                assert_eq!(sol.policy.probs, baseline.policy.probs);
            }
            let stats = shared.stats();
            assert_eq!(stats.banks, 1, "{inner:?}");
            assert_eq!(stats.publishes, 2, "{inner:?}");
            assert!(stats.adoptions >= 1, "{inner:?}: {stats:?}");
            // Adoption actually skipped column passes on the second solve.
            assert!(
                second.cache.state_hits >= first.cache.state_hits,
                "{inner:?}: {} vs {}",
                second.cache.state_hits,
                first.cache.state_hits
            );
        }
    }

    #[test]
    fn generous_work_budget_is_bit_identical_to_unbudgeted() {
        let spec = random_game(&RandomGameConfig::default(), 43);
        let base = SolverConfig {
            n_samples: 60,
            epsilon: 0.25,
            ..Default::default()
        };
        let plain = OapSolver::new(base.clone()).solve(&spec).unwrap();
        assert_eq!(plain.degrade, None);
        let budgeted = OapSolver::new(SolverConfig {
            work_budget: Some(plain.stats.thresholds_explored + 1),
            ..base
        })
        .solve(&spec)
        .unwrap();
        assert_eq!(budgeted.degrade, None);
        assert_eq!(plain.loss.to_bits(), budgeted.loss.to_bits());
        assert_eq!(plain.policy.thresholds, budgeted.policy.thresholds);
        assert_eq!(plain.policy.orders, budgeted.policy.orders);
        assert_eq!(plain.policy.probs, budgeted.policy.probs);
        assert_eq!(plain.strategy, budgeted.strategy);
    }

    #[test]
    fn exhausted_ladder_commits_feasible_truncated_policy() {
        let spec = random_game(&RandomGameConfig::default(), 47);
        let sol = OapSolver::new(SolverConfig {
            n_samples: 60,
            epsilon: 0.25,
            work_budget: Some(1),
            ..Default::default()
        })
        .solve(&spec)
        .unwrap();
        // Budget 1 admits only the start-vector evaluation on every rung,
        // so the ladder bottoms out on the decomposed tier and truncates —
        // but still commits a feasible policy.
        assert_eq!(sol.degrade, Some(DegradeReason::Truncated));
        assert!(sol.stats.budget_exhausted);
        assert!(matches!(sol.strategy, SolveStrategy::Decomposed { .. }));
        assert!(sol.loss.is_finite());
        let psum: f64 = sol.policy.probs.iter().sum();
        assert!((psum - 1.0).abs() < 1e-6);
        assert_eq!(sol.policy.thresholds.len(), spec.n_types());
    }

    #[test]
    fn every_budget_yields_a_feasible_policy_with_consistent_degrade() {
        let spec = random_game(&RandomGameConfig::default(), 53);
        let base = SolverConfig {
            n_samples: 60,
            epsilon: 0.25,
            ..Default::default()
        };
        let plain = OapSolver::new(base.clone()).solve(&spec).unwrap();
        for budget in 1..=plain.stats.thresholds_explored + 1 {
            let sol = OapSolver::new(SolverConfig {
                work_budget: Some(budget),
                ..base.clone()
            })
            .solve(&spec)
            .unwrap();
            assert!(sol.loss.is_finite(), "budget {budget}");
            let psum: f64 = sol.policy.probs.iter().sum();
            assert!((psum - 1.0).abs() < 1e-6, "budget {budget}");
            // degrade is recorded exactly when the committed rung either
            // sits below the plan or ran out of budget itself.
            match sol.degrade {
                None => {
                    assert!(!sol.stats.budget_exhausted, "budget {budget}");
                    assert_eq!(sol.strategy, plain.strategy, "budget {budget}");
                }
                Some(DegradeReason::Degraded { tiers }) => {
                    assert!(tiers >= 1, "budget {budget}");
                    assert!(!sol.stats.budget_exhausted, "budget {budget}");
                    assert_ne!(sol.strategy, plain.strategy, "budget {budget}");
                }
                Some(DegradeReason::Truncated) => {
                    assert!(sol.stats.budget_exhausted, "budget {budget}");
                }
                Some(DegradeReason::KeptIncumbent) => {
                    panic!("solver never records KeptIncumbent (budget {budget})")
                }
            }
            // Budgeted runs are reproducible.
            let again = OapSolver::new(SolverConfig {
                work_budget: Some(budget),
                ..base.clone()
            })
            .solve(&spec)
            .unwrap();
            assert_eq!(sol.loss.to_bits(), again.loss.to_bits(), "budget {budget}");
            assert_eq!(sol.degrade, again.degrade, "budget {budget}");
            assert_eq!(sol.policy.thresholds, again.policy.thresholds);
        }
    }

    #[test]
    fn mismatched_bank_shape_rejected() {
        let spec = random_game(&RandomGameConfig::default(), 1);
        let bank = stochastics::SampleBank::from_rows(vec![vec![1u64; spec.n_types() + 1]]);
        let solver = OapSolver::new(SolverConfig::default());
        assert!(matches!(
            solver.solve_with_bank(&spec, &bank, None),
            Err(GameError::InvalidConfig(_))
        ));
    }

    #[test]
    fn zero_samples_rejected() {
        let spec = random_game(&RandomGameConfig::default(), 1);
        let solver = OapSolver::new(SolverConfig {
            n_samples: 0,
            ..Default::default()
        });
        assert!(solver.solve(&spec).is_err());
    }
}
