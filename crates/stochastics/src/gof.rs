//! Goodness-of-fit diagnostics for count models.
//!
//! The real-data substitutes (`emrsim`, `creditsim`) fit `F_t` from
//! simulated logs; these statistics quantify how well a fitted
//! [`CountDistribution`] explains observed counts. Two classic measures:
//!
//! * [`chi_square`] — Pearson's χ² over pooled bins (bins with expected
//!   mass below a floor are merged, per standard practice);
//! * [`ks_statistic`] — the discrete Kolmogorov–Smirnov sup-distance
//!   between empirical and model CDFs.

use crate::discrete::CountDistribution;

/// Pearson χ² statistic and its degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquare {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom (pooled bins − 1).
    pub dof: usize,
}

impl ChiSquare {
    /// Crude large-dof acceptance check: a χ² variable with `k` degrees of
    /// freedom has mean `k` and variance `2k`; values beyond
    /// `k + z·√(2k)` are rejected. Good enough for simulator self-checks
    /// without shipping an incomplete-gamma implementation.
    pub fn plausible(&self, z: f64) -> bool {
        let k = self.dof.max(1) as f64;
        self.statistic <= k + z * (2.0 * k).sqrt()
    }
}

/// Pearson χ² of observations against a fitted model.
///
/// Bins are the model's support values; adjacent bins are pooled until each
/// has expected count ≥ `min_expected` (5 is the classical rule of thumb).
pub fn chi_square(obs: &[u64], model: &dyn CountDistribution, min_expected: f64) -> ChiSquare {
    assert!(!obs.is_empty(), "need observations");
    let n = obs.len() as f64;
    let lo = model.support_min();
    let hi = model.support_max();

    // Observed histogram over the model support (out-of-support mass goes
    // to the nearest edge bin).
    let width = (hi - lo + 1) as usize;
    let mut observed = vec![0.0f64; width];
    for &o in obs {
        let idx = o.clamp(lo, hi) - lo;
        observed[idx as usize] += 1.0;
    }
    let expected: Vec<f64> = (lo..=hi).map(|k| model.pmf(k) * n).collect();

    // Pool adjacent bins until each pooled bin reaches the floor. A tail
    // that runs out of support before reaching the floor is pooled
    // *backward* into the last full bin: emitting it on its own would
    // divide by a near-zero expectation (a single tail observation could
    // inflate χ² by orders of magnitude) and contradict the
    // ≥ `min_expected` contract above.
    let mut pooled: Vec<(f64, f64)> = Vec::new();
    let mut acc_o = 0.0;
    let mut acc_e = 0.0;
    for i in 0..width {
        acc_o += observed[i];
        acc_e += expected[i];
        if acc_e >= min_expected {
            pooled.push((acc_o, acc_e));
            acc_o = 0.0;
            acc_e = 0.0;
        }
    }
    if acc_o > 0.0 || acc_e > 0.0 {
        match pooled.last_mut() {
            Some(last) => {
                last.0 += acc_o;
                last.1 += acc_e;
            }
            // Degenerate model: the whole support stays below the floor —
            // one single bin is all there is.
            None => pooled.push((acc_o, acc_e)),
        }
    }
    let mut stat = 0.0;
    let mut bins = 0usize;
    for &(o, e) in &pooled {
        if e > 0.0 {
            stat += (o - e).powi(2) / e;
            bins += 1;
        }
    }
    ChiSquare {
        statistic: stat,
        dof: bins.saturating_sub(1).max(1),
    }
}

/// Discrete Kolmogorov–Smirnov statistic `sup_n |F̂(n) − F(n)|`.
pub fn ks_statistic(obs: &[u64], model: &dyn CountDistribution) -> f64 {
    assert!(!obs.is_empty(), "need observations");
    let n = obs.len() as f64;
    let hi = model
        .support_max()
        .max(*obs.iter().max().expect("non-empty"));
    let mut sorted = obs.to_vec();
    sorted.sort_unstable();
    let mut worst: f64 = 0.0;
    let mut cum_model = 0.0;
    let mut idx = 0usize;
    for k in 0..=hi {
        cum_model += model.pmf(k);
        while idx < sorted.len() && sorted[idx] <= k {
            idx += 1;
        }
        let cum_emp = idx as f64 / n;
        worst = worst.max((cum_emp - cum_model).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrete::{DiscretizedGaussian, UniformCount};
    use crate::rng::seeded_rng;

    fn draws(d: &dyn CountDistribution, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn chi_square_accepts_own_samples() {
        let d = DiscretizedGaussian::with_halfwidth(10.0, 2.5, 7);
        let obs = draws(&d, 4000, 3);
        let c = chi_square(&obs, &d, 5.0);
        assert!(c.plausible(4.0), "χ² {} with dof {}", c.statistic, c.dof);
    }

    #[test]
    fn chi_square_rejects_wrong_model() {
        let truth = DiscretizedGaussian::with_halfwidth(10.0, 2.5, 7);
        let wrong = UniformCount::new(3, 17);
        let obs = draws(&truth, 4000, 3);
        let c = chi_square(&obs, &wrong, 5.0);
        assert!(
            !c.plausible(6.0),
            "uniform should be rejected: χ² {}",
            c.statistic
        );
    }

    #[test]
    fn sparse_tail_pools_backward_instead_of_inflating() {
        // A single far-tail observation lands where the expected mass is
        // ~1e-3. Before the fix the `last` branch emitted that tail as its
        // own bin, contributing (1 − e)²/e ≈ 1000 on its own; pooled
        // backward into the last full bin, the statistic stays ordinary.
        let d = DiscretizedGaussian::with_halfwidth(5.0, 1.0, 5);
        let mut obs = draws(&d, 400, 11);
        obs.push(d.support_max());
        let c = chi_square(&obs, &d, 5.0);
        assert!(
            c.statistic < 100.0,
            "sparse tail was not pooled backward: χ² {} (dof {})",
            c.statistic,
            c.dof
        );
        assert!(c.plausible(6.0), "χ² {} with dof {}", c.statistic, c.dof);
    }

    #[test]
    fn every_pooled_bin_contract_holds_with_all_mass_below_floor() {
        // Degenerate case: every expected bin is below the floor — the
        // whole support collapses into one bin (dof floors at 1) instead
        // of emitting an under-floor tail bin.
        let d = UniformCount::new(0, 9);
        let obs: Vec<u64> = (0..10u64).collect();
        let c = chi_square(&obs, &d, 100.0);
        assert_eq!(c.dof, 1);
        assert!(c.statistic.abs() < 1e-12, "χ² {}", c.statistic);
    }

    #[test]
    fn ks_small_for_matching_model() {
        let d = DiscretizedGaussian::with_halfwidth(6.0, 2.0, 5);
        let obs = draws(&d, 5000, 9);
        let ks = ks_statistic(&obs, &d);
        assert!(ks < 0.03, "KS {ks}");
    }

    #[test]
    fn ks_large_for_shifted_model() {
        let truth = DiscretizedGaussian::with_halfwidth(6.0, 2.0, 5);
        let shifted = DiscretizedGaussian::with_halfwidth(9.0, 2.0, 5);
        let obs = draws(&truth, 5000, 9);
        assert!(ks_statistic(&obs, &shifted) > 0.3);
    }

    #[test]
    fn ks_is_bounded_by_one() {
        let d = UniformCount::new(0, 3);
        let obs = vec![100u64; 50]; // far outside support
        let ks = ks_statistic(&obs, &d);
        assert!(ks <= 1.0 + 1e-12 && ks > 0.9);
    }
}
