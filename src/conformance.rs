//! Cross-solver golden conformance harness.
//!
//! For every registry scenario this module solves the (conformance-scale)
//! game with each applicable solver mode under each detection model, and
//! serializes the resulting objective values and thresholds. The
//! `tests/scenario_conformance.rs` suite compares these reports against
//! committed snapshots in `tests/golden/*.json`, pinning every solver's
//! answer on every scenario: a performance refactor that drifts any
//! number fails CI immediately. Regenerate snapshots with
//! `UPDATE_GOLDEN=1 cargo test --test scenario_conformance`.
//!
//! Everything here is deterministic: fixed seeds, fixed sample counts,
//! single-threaded engines (thread count is separately proven not to
//! change results by `tests/detection_equivalence.rs`).

use crate::json::Value;
use audit_game::attacker::AttackerModel;
use audit_game::cggs::Cggs;
use audit_game::detection::{DetectionEstimator, DetectionModel};
use audit_game::error::GameError;
use audit_game::general_sum::{DamageModel, GeneralSumEvaluator};
use audit_game::ishm::{Ishm, IshmConfig};
use audit_game::model::GameSpec;
use audit_game::ordering::AuditOrder;
use audit_game::quantal::{solve_qr_thresholds, QuantalResponse};
use audit_game::scenario::Scenario;
use audit_game::solver::{InnerKind, OapSolver, SolverConfig};
use audit_runtime::{AuditService, DriftConfig, RuntimeConfig};
use std::path::PathBuf;
use std::sync::Arc;

/// Monte-Carlo samples per conformance cell — small on purpose: the suite
/// runs in debug CI, and golden comparison needs determinism, not
/// statistical accuracy.
pub const CONFORMANCE_SAMPLES: usize = 40;

/// ISHM step size for the conformance cells (coarse, for speed).
pub const CONFORMANCE_EPSILON: f64 = 0.4;

/// Tractability gates of the matrix, shared with the solver's planner so
/// the conformance harness and `InnerKind::Auto` can never disagree about
/// where a tier ends: `EXACT_MAX_TYPES` bounds the `ishm-exact` cells
/// (the exact inner enumerates `|T|!` audit orders per threshold vector —
/// the registry's 7-type EMR scenarios would need 5040), and
/// `ISHM_FULL_MAX_TYPES` bounds the `ishm-cggs` cells (past it the full
/// un-capped ISHM outer search is the planner's job).
pub use audit_game::planner::{EXACT_MAX_TYPES, ISHM_FULL_MAX_TYPES};

/// One solver configuration of the conformance matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverMode {
    /// Plain CGGS at the canonical threshold vector (no threshold search).
    Cggs,
    /// ISHM threshold search over the exact order enumeration.
    IshmExact,
    /// ISHM threshold search over the CGGS inner solver.
    IshmCggs,
    /// The hardness-aware planner (`InnerKind::Auto`): strategy selection
    /// plus type-cluster decomposition. Only materialized past the
    /// full-ISHM gate — below it the planner picks the same strategies
    /// the other modes already pin, so the cell would be a duplicate.
    Planner,
}

impl SolverMode {
    /// Every mode, in snapshot order.
    pub const ALL: [SolverMode; 4] = [
        SolverMode::Cggs,
        SolverMode::IshmExact,
        SolverMode::IshmCggs,
        SolverMode::Planner,
    ];

    /// Stable snapshot key.
    pub fn key(&self) -> &'static str {
        match self {
            SolverMode::Cggs => "cggs",
            SolverMode::IshmExact => "ishm-exact",
            SolverMode::IshmCggs => "ishm-cggs",
            SolverMode::Planner => "ishm-planner",
        }
    }

    /// Whether the mode runs for this game.
    pub fn applicable(&self, spec: &GameSpec) -> bool {
        match self {
            SolverMode::IshmExact => spec.n_types() <= EXACT_MAX_TYPES,
            SolverMode::IshmCggs => spec.n_types() <= ISHM_FULL_MAX_TYPES,
            SolverMode::Planner => spec.n_types() > ISHM_FULL_MAX_TYPES,
            SolverMode::Cggs => true,
        }
    }

    /// The `#[ignore]`-style marker for an inapplicable mode, or `None`
    /// when the omission is definitional rather than an intractability
    /// skip: the planner cell simply does not exist below the full-ISHM
    /// gate (it would duplicate `ishm-cggs`), and plain CGGS always runs.
    pub fn skip_reason(&self, spec: &GameSpec) -> Option<String> {
        match self {
            SolverMode::IshmExact => Some(format!(
                "{} alert types exceed EXACT_MAX_TYPES = {EXACT_MAX_TYPES}: the exact inner \
                 enumerates |T|! audit orders per threshold vector",
                spec.n_types()
            )),
            SolverMode::IshmCggs => Some(format!(
                "{} alert types exceed ISHM_FULL_MAX_TYPES = {ISHM_FULL_MAX_TYPES}: the \
                 un-capped ISHM outer search sweeps C(|T|, l) shrink subsets per level; \
                 the ishm-planner cell covers this width",
                spec.n_types()
            )),
            SolverMode::Cggs | SolverMode::Planner => None,
        }
    }
}

/// Snapshot key of a detection model.
pub fn detection_key(model: DetectionModel) -> &'static str {
    match model {
        DetectionModel::PaperApprox => "paper-approx",
        DetectionModel::AttackInclusive => "attack-inclusive",
        DetectionModel::Operational => "operational",
    }
}

/// The detection models of the conformance matrix, in snapshot order.
pub const DETECTION_MODELS: [DetectionModel; 3] = [
    DetectionModel::PaperApprox,
    DetectionModel::AttackInclusive,
    DetectionModel::Operational,
];

/// One solved cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Solver mode key.
    pub solver: &'static str,
    /// Detection model key.
    pub detection: &'static str,
    /// Objective value (auditor's loss).
    pub objective: f64,
    /// Threshold vector (budget units) the solve settled on.
    pub thresholds: Vec<f64>,
}

/// A cell the matrix deliberately did not solve, with the reason — the
/// `#[ignore]`-style marker that replaces silent omission. Not part of
/// the golden serialization (goldens pin solved cells only); the
/// conformance suite prints these as explicit `ignored:` lines.
#[derive(Debug, Clone)]
pub struct SkippedCell {
    /// Solver mode key.
    pub solver: &'static str,
    /// Detection model key.
    pub detection: &'static str,
    /// Why the cell was skipped.
    pub reason: String,
}

/// The full conformance report of one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Registry key.
    pub scenario: String,
    /// Seed the cells were solved at.
    pub seed: u64,
    /// `|T|` of the conformance-scale game.
    pub n_types: usize,
    /// `|E|` of the conformance-scale game.
    pub n_attackers: usize,
    /// Total actions of the conformance-scale game.
    pub n_actions: usize,
    /// Budget `B`.
    pub budget: f64,
    /// All solved cells, in matrix order.
    pub cells: Vec<Cell>,
    /// Cells deliberately skipped as intractable, with reasons.
    pub skipped: Vec<SkippedCell>,
}

/// The canonical fixed threshold vector for the plain-CGGS cells: full
/// coverage per type, capped by the budget.
pub fn canonical_thresholds(spec: &GameSpec) -> Vec<f64> {
    spec.threshold_upper_bounds()
        .into_iter()
        .map(|b| b.min(spec.budget))
        .collect()
}

/// Solve one cell.
pub fn run_cell(
    spec: &GameSpec,
    mode: SolverMode,
    model: DetectionModel,
    seed: u64,
) -> Result<Cell, GameError> {
    let (objective, thresholds) = match mode {
        SolverMode::Cggs => {
            let working = spec.dedup_actions();
            let bank = working.sample_bank(CONFORMANCE_SAMPLES, seed);
            let est = DetectionEstimator::new(&working, &bank, model);
            let thresholds = canonical_thresholds(&working);
            let out = Cggs::default().solve(&working, &est, &thresholds)?;
            (out.master.value, thresholds)
        }
        SolverMode::IshmExact | SolverMode::IshmCggs | SolverMode::Planner => {
            let inner = match mode {
                SolverMode::IshmExact => InnerKind::Exact,
                SolverMode::IshmCggs => InnerKind::Cggs,
                _ => InnerKind::Auto,
            };
            let sol = OapSolver::new(SolverConfig {
                epsilon: CONFORMANCE_EPSILON,
                n_samples: CONFORMANCE_SAMPLES,
                seed,
                inner,
                detection: model,
                dedup_actions: true,
                threads: 1,
                work_budget: None,
            })
            .solve(spec)?;
            (sol.loss, sol.policy.thresholds)
        }
    };
    Ok(Cell {
        solver: mode.key(),
        detection: detection_key(model),
        objective,
        thresholds,
    })
}

/// Solve one quantal-response cell: ISHM over the QR loss, exact order
/// enumeration. The spec is **not** dedup'd — duplicate actions each carry
/// logit probability mass, so deduplication would change the objective.
fn run_qr_cell(
    spec: &GameSpec,
    qr: QuantalResponse,
    model: DetectionModel,
    seed: u64,
) -> Result<Cell, GameError> {
    let bank = spec.sample_bank(CONFORMANCE_SAMPLES, seed);
    let est = DetectionEstimator::new(spec, &bank, model);
    let out = solve_qr_thresholds(spec, &est, qr, CONFORMANCE_EPSILON)?;
    Ok(Cell {
        solver: "ishm-qr",
        detection: detection_key(model),
        objective: out.value,
        thresholds: out.thresholds,
    })
}

/// Solve one general-sum cell: ISHM minimizing auditor damage over the
/// exact order enumeration.
fn run_gsum_cell(
    spec: &GameSpec,
    damage: DamageModel,
    model: DetectionModel,
    seed: u64,
) -> Result<Cell, GameError> {
    let bank = spec.sample_bank(CONFORMANCE_SAMPLES, seed);
    let est = DetectionEstimator::new(spec, &bank, model);
    let orders = AuditOrder::enumerate_all(spec.n_types());
    let mut eval = GeneralSumEvaluator::new(spec, est, orders, damage);
    let out = Ishm::new(IshmConfig {
        epsilon: CONFORMANCE_EPSILON,
        ..Default::default()
    })
    .solve(spec, &mut eval)?;
    Ok(Cell {
        solver: "ishm-gsum",
        detection: detection_key(model),
        objective: out.value,
        thresholds: out.thresholds,
    })
}

/// Solve one adaptive-attacker cell: a short deterministic
/// [`AuditService`] run (4 epochs, staleness-forced re-solves) with the
/// scenario's adaptive attackers injecting traffic; the cell pins the
/// final committed objective and thresholds.
fn run_adaptive_cell(
    sc: &Arc<dyn Scenario>,
    model: DetectionModel,
    seed: u64,
) -> Result<Cell, GameError> {
    let report = AuditService::new(
        Arc::clone(sc),
        RuntimeConfig {
            epochs: 4,
            periods_per_epoch: 3,
            seed,
            solver: SolverConfig {
                epsilon: CONFORMANCE_EPSILON,
                n_samples: CONFORMANCE_SAMPLES,
                seed,
                inner: InnerKind::Cggs,
                detection: model,
                dedup_actions: true,
                threads: 1,
                work_budget: None,
            },
            drift: DriftConfig {
                window_periods: 6,
                max_stale_epochs: Some(2),
                ..Default::default()
            },
            warm_start: true,
            compare_cold: false,
        },
    )
    .run()?;
    let last = report
        .epochs
        .last()
        .expect("service ran at least one epoch");
    Ok(Cell {
        solver: "adaptive-soak",
        detection: detection_key(model),
        objective: last.objective,
        thresholds: last.thresholds.clone(),
    })
}

/// Solve the full conformance matrix of one scenario (at its small scale
/// and default seed): the three standard solver modes, plus the cells of
/// the scenario's declared attacker model. Intractable cells are recorded
/// in [`ScenarioReport::skipped`] with reasons instead of silently
/// omitted.
pub fn run_scenario(sc: &Arc<dyn Scenario>) -> Result<ScenarioReport, GameError> {
    let seed = sc.default_seed();
    let spec = sc.build_small(seed)?;
    let exact_skip_reason = || {
        SolverMode::IshmExact
            .skip_reason(&spec)
            .expect("ishm-exact always has a skip reason")
    };
    let mut cells = Vec::new();
    let mut skipped = Vec::new();
    for mode in SolverMode::ALL {
        if !mode.applicable(&spec) {
            if let Some(reason) = mode.skip_reason(&spec) {
                for model in DETECTION_MODELS {
                    skipped.push(SkippedCell {
                        solver: mode.key(),
                        detection: detection_key(model),
                        reason: reason.clone(),
                    });
                }
            }
            continue;
        }
        for model in DETECTION_MODELS {
            cells.push(run_cell(&spec, mode, model, seed)?);
        }
    }
    match sc.attacker_model() {
        AttackerModel::Rational => {}
        AttackerModel::Quantal(qr) => {
            for model in DETECTION_MODELS {
                if spec.n_types() <= EXACT_MAX_TYPES {
                    cells.push(run_qr_cell(&spec, qr, model, seed)?);
                } else {
                    skipped.push(SkippedCell {
                        solver: "ishm-qr",
                        detection: detection_key(model),
                        reason: exact_skip_reason(),
                    });
                }
            }
        }
        AttackerModel::GeneralSum(damage) => {
            for model in DETECTION_MODELS {
                if spec.n_types() <= EXACT_MAX_TYPES {
                    cells.push(run_gsum_cell(&spec, damage, model, seed)?);
                } else {
                    skipped.push(SkippedCell {
                        solver: "ishm-gsum",
                        detection: detection_key(model),
                        reason: exact_skip_reason(),
                    });
                }
            }
        }
        AttackerModel::Adaptive(_) => {
            for model in DETECTION_MODELS {
                cells.push(run_adaptive_cell(sc, model, seed)?);
            }
        }
    }
    Ok(ScenarioReport {
        scenario: sc.key().to_string(),
        seed,
        n_types: spec.n_types(),
        n_attackers: spec.n_attackers(),
        n_actions: spec.n_actions(),
        budget: spec.budget,
        cells,
        skipped,
    })
}

impl ScenarioReport {
    /// Serialize to the golden JSON format.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("scenario", Value::Str(self.scenario.clone())),
            ("seed", Value::Num(self.seed as f64)),
            ("n_types", Value::Num(self.n_types as f64)),
            ("n_attackers", Value::Num(self.n_attackers as f64)),
            ("n_actions", Value::Num(self.n_actions as f64)),
            ("budget", Value::Num(self.budget)),
            (
                "cells",
                Value::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Value::obj([
                                ("solver", Value::Str(c.solver.to_string())),
                                ("detection", Value::Str(c.detection.to_string())),
                                ("objective", Value::Num(c.objective)),
                                ("thresholds", Value::nums(c.thresholds.iter().copied())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Compare against a parsed golden snapshot; `Err` carries a
    /// human-readable list of every mismatch.
    ///
    /// Objectives and thresholds compare with relative tolerance `1e-9` —
    /// effectively exact (the pipeline is deterministic), while staying
    /// robust to libm differences should the goldens ever be regenerated
    /// on another platform.
    pub fn compare_to_golden(&self, golden: &Value) -> Result<(), String> {
        let mut problems = Vec::new();
        let mut check_num = |field: &str, got: f64, want: Option<f64>| match want {
            Some(want) if approx_eq(got, want) => {}
            Some(want) => problems.push(format!("{field}: got {got:?}, golden {want:?}")),
            None => problems.push(format!("{field}: missing in golden")),
        };
        check_num(
            "seed",
            self.seed as f64,
            golden.get("seed").and_then(Value::as_f64),
        );
        check_num(
            "n_types",
            self.n_types as f64,
            golden.get("n_types").and_then(Value::as_f64),
        );
        check_num(
            "n_attackers",
            self.n_attackers as f64,
            golden.get("n_attackers").and_then(Value::as_f64),
        );
        check_num(
            "n_actions",
            self.n_actions as f64,
            golden.get("n_actions").and_then(Value::as_f64),
        );
        check_num(
            "budget",
            self.budget,
            golden.get("budget").and_then(Value::as_f64),
        );

        let golden_cells = golden
            .get("cells")
            .and_then(Value::as_arr)
            .unwrap_or_default();
        if golden_cells.len() != self.cells.len() {
            problems.push(format!(
                "cell count: got {}, golden {}",
                self.cells.len(),
                golden_cells.len()
            ));
        }
        for cell in &self.cells {
            let label = format!("{}/{}", cell.solver, cell.detection);
            let found = golden_cells.iter().find(|g| {
                g.get("solver").and_then(Value::as_str) == Some(cell.solver)
                    && g.get("detection").and_then(Value::as_str) == Some(cell.detection)
            });
            let Some(found) = found else {
                problems.push(format!("{label}: cell missing in golden"));
                continue;
            };
            match found.get("objective").and_then(Value::as_f64) {
                Some(want) if approx_eq(cell.objective, want) => {}
                other => problems.push(format!(
                    "{label}: objective got {:?}, golden {other:?}",
                    cell.objective
                )),
            }
            let want_thresholds: Vec<f64> = found
                .get("thresholds")
                .and_then(Value::as_arr)
                .map(|a| a.iter().filter_map(Value::as_f64).collect())
                .unwrap_or_default();
            let thresholds_match = want_thresholds.len() == cell.thresholds.len()
                && cell
                    .thresholds
                    .iter()
                    .zip(&want_thresholds)
                    .all(|(&a, &b)| approx_eq(a, b));
            if !thresholds_match {
                problems.push(format!(
                    "{label}: thresholds got {:?}, golden {want_thresholds:?}",
                    cell.thresholds
                ));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems.join("\n"))
        }
    }
}

/// Relative comparison at `1e-9`, absolute near zero.
pub fn approx_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-9 * scale
}

/// Directory holding the committed golden snapshots.
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Path of one scenario's snapshot.
pub fn golden_path(scenario_key: &str) -> PathBuf {
    golden_dir().join(format!("{scenario_key}.json"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_and_models_have_stable_keys() {
        assert_eq!(
            SolverMode::ALL.map(|m| m.key()),
            ["cggs", "ishm-exact", "ishm-cggs", "ishm-planner"]
        );
        assert_eq!(
            DETECTION_MODELS.map(detection_key),
            ["paper-approx", "attack-inclusive", "operational"]
        );
    }

    #[test]
    fn exact_mode_gates_on_type_count() {
        let small = audit_game::datasets::syn_a(); // 4 types
        assert!(SolverMode::IshmExact.applicable(&small));
        assert!(SolverMode::Cggs.applicable(&small));
        // Below the full-ISHM gate the planner cell is definitionally
        // absent — no skip marker, because nothing tractable was skipped.
        assert!(!SolverMode::Planner.applicable(&small));
        assert!(SolverMode::Planner.skip_reason(&small).is_none());
    }

    #[test]
    fn planner_mode_takes_over_past_the_full_ishm_gate() {
        let reg = audit_game::scenario::registry();
        let wide = reg.get("syn-wide25").unwrap();
        let spec = wide.build_small(wide.default_seed()).unwrap();
        assert!(spec.n_types() > ISHM_FULL_MAX_TYPES);
        assert!(SolverMode::Planner.applicable(&spec));
        assert!(!SolverMode::IshmCggs.applicable(&spec));
        let reason = SolverMode::IshmCggs.skip_reason(&spec).unwrap();
        assert!(
            reason.contains("ISHM_FULL_MAX_TYPES") && reason.contains("ishm-planner"),
            "reason should name the gate and the successor: {reason}"
        );
    }

    #[test]
    fn report_roundtrips_and_self_compares() {
        let registry = audit_game::scenario::registry();
        let sc = registry.get("syn-a").unwrap();
        let report = run_scenario(sc).unwrap();
        assert_eq!(report.cells.len(), 9, "4-type scenario runs all 9 cells");
        assert!(report.skipped.is_empty(), "nothing to skip at 4 types");
        let json = report.to_json().render();
        let parsed = crate::json::Value::parse(&json).unwrap();
        report.compare_to_golden(&parsed).unwrap();
    }

    #[test]
    fn comparison_flags_drift() {
        let registry = audit_game::scenario::registry();
        let sc = registry.get("syn-a").unwrap();
        let mut report = run_scenario(sc).unwrap();
        let golden = crate::json::Value::parse(&report.to_json().render()).unwrap();
        report.cells[0].objective += 1e-3;
        let err = report.compare_to_golden(&golden).unwrap_err();
        assert!(err.contains("objective"), "unexpected message: {err}");
    }

    #[test]
    fn intractable_exact_cells_are_marked_skipped_not_omitted() {
        use audit_game::model::{AttackAction, Attacker, GameSpecBuilder};
        use stochastics::Constant;

        /// A synthetic 6-type scenario: one past the exact-inner gate.
        struct SixTypes;
        impl Scenario for SixTypes {
            fn key(&self) -> &str {
                "test-six-types"
            }
            fn source(&self) -> &str {
                "core"
            }
            fn describe(&self) -> String {
                "6 constant types, forces the ishm-exact skip path".into()
            }
            fn build(&self, _seed: u64) -> Result<GameSpec, GameError> {
                let mut b = GameSpecBuilder::new();
                for t in 0..6 {
                    b.alert_type(format!("t{t}"), 1.0, std::sync::Arc::new(Constant(1)));
                }
                b.attacker(Attacker::new(
                    "e0",
                    1.0,
                    vec![AttackAction::deterministic("v0", 0, 5.0, 0.4, 4.0)],
                ));
                b.budget(2.0);
                b.build()
            }
        }

        let sc: Arc<dyn Scenario> = Arc::new(SixTypes);
        let report = run_scenario(&sc).unwrap();
        // 2 tractable modes x 3 detection models solved ...
        assert_eq!(report.cells.len(), 6);
        assert!(report.cells.iter().all(|c| c.solver != "ishm-exact"));
        // ... and the 3 ishm-exact cells are explicit skip markers.
        assert_eq!(report.skipped.len(), 3);
        for s in &report.skipped {
            assert_eq!(s.solver, "ishm-exact");
            assert!(
                s.reason.contains("EXACT_MAX_TYPES") && s.reason.contains('6'),
                "reason should name the gate: {}",
                s.reason
            );
        }
        // Skip markers stay out of the golden serialization.
        let json = report.to_json().render();
        assert!(!json.contains("skipped") && !json.contains("ishm-exact"));
    }
}
