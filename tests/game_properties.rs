//! Property-based tests of game-level invariants on randomly generated
//! instances.

use alert_audit::game::brute_force::solve_brute_force;
use alert_audit::game::cggs::Cggs;
use alert_audit::game::datasets::{random_game, RandomGameConfig};
use alert_audit::game::detection::{DetectionEstimator, DetectionModel};
use alert_audit::game::ishm::{CggsEvaluator, Ishm, IshmConfig};
use alert_audit::game::master::MasterSolver;
use alert_audit::game::ordering::AuditOrder;
use alert_audit::game::payoff::PayoffMatrix;
use proptest::prelude::*;

fn cfg(n_types: usize, opt_out: bool, budget: f64) -> RandomGameConfig {
    RandomGameConfig {
        n_types,
        n_attackers: 4,
        n_victims: 6,
        budget,
        allow_opt_out: opt_out,
        benign_prob: 0.15,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The game value is a saddle point: no attacker can gain by deviating
    /// (loss under best responses equals the LP value), and every pure
    /// auditor order does at least as badly as the mixture.
    #[test]
    fn master_value_is_a_saddle_point(seed in 0u64..500, opt_out in any::<bool>()) {
        let spec = random_game(&cfg(3, opt_out, 4.0), seed);
        let bank = spec.sample_bank(60, seed);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let orders = AuditOrder::enumerate_all(3);
        let thresholds = vec![3.0, 3.0, 3.0];
        let m = PayoffMatrix::build(&spec, &est, orders, &thresholds);
        let sol = MasterSolver::solve(&spec, &m).unwrap();

        // (a) realized loss of the mixture equals the LP value;
        let loss = m.loss_under_mixture(&spec, &sol.p_orders);
        prop_assert!((loss - sol.value).abs() < 1e-6,
            "loss {loss} vs value {}", sol.value);

        // (b) every pure strategy is weakly worse for the auditor.
        for k in 0..m.n_orders() {
            let mut pure = vec![0.0; m.n_orders()];
            pure[k] = 1.0;
            let pure_loss = m.loss_under_mixture(&spec, &pure);
            prop_assert!(pure_loss >= sol.value - 1e-6,
                "pure order {k} loss {pure_loss} beats value {}", sol.value);
        }

        // (c) u_e decomposition: Σ p_e·u_e = value.
        let decomposed: f64 = spec.attackers.iter().zip(&sol.u_attackers)
            .map(|(a, &u)| a.attack_prob * u)
            .sum();
        prop_assert!((decomposed - sol.value).abs() < 1e-6);
    }

    /// Raising the budget can only help the auditor.
    #[test]
    fn value_monotone_in_budget(seed in 0u64..200) {
        let mut prev = f64::INFINITY;
        for budget in [1.0, 3.0, 6.0, 12.0] {
            let spec = random_game(&cfg(3, false, budget), seed);
            let bank = spec.sample_bank(60, 99);
            let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
            let orders = AuditOrder::enumerate_all(3);
            let thresholds = spec.threshold_upper_bounds();
            let m = PayoffMatrix::build(&spec, &est, orders, &thresholds);
            let v = MasterSolver::solve(&spec, &m).unwrap().value;
            prop_assert!(v <= prev + 1e-6, "budget {budget}: {v} > {prev}");
            prev = v;
        }
    }

    /// With opting out allowed, the value is capped by the no-opt-out value
    /// and floored at... nothing specific, but each u_e must be ≥ 0.
    #[test]
    fn opt_out_only_helps_attackers_stay_home(seed in 0u64..200) {
        let spec_free = random_game(&cfg(3, true, 4.0), seed);
        let mut spec_locked = spec_free.clone();
        spec_locked.allow_opt_out = false;
        let bank = spec_free.sample_bank(60, 5);
        let est_free = DetectionEstimator::new(&spec_free, &bank, DetectionModel::PaperApprox);
        let est_locked = DetectionEstimator::new(&spec_locked, &bank, DetectionModel::PaperApprox);
        let orders = AuditOrder::enumerate_all(3);
        let thresholds = vec![3.0, 3.0, 3.0];

        let m_free = PayoffMatrix::build(&spec_free, &est_free, orders.clone(), &thresholds);
        let sol_free = MasterSolver::solve(&spec_free, &m_free).unwrap();
        let m_locked = PayoffMatrix::build(&spec_locked, &est_locked, orders, &thresholds);
        let sol_locked = MasterSolver::solve(&spec_locked, &m_locked).unwrap();

        for &u in &sol_free.u_attackers {
            prop_assert!(u >= -1e-7, "opt-out attacker with negative utility {u}");
        }
        // Opting out floors each attacker's utility at 0, so the total can
        // only be ≥ the unconstrained (possibly negative) total.
        prop_assert!(sol_free.value >= sol_locked.value - 1e-6);
    }

    /// Pal is a probability vector and is monotone in thresholds.
    #[test]
    fn pal_bounds_and_monotonicity(seed in 0u64..300) {
        let spec = random_game(&cfg(3, false, 5.0), seed);
        let bank = spec.sample_bank(80, seed ^ 7);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let order = AuditOrder::identity(3);
        let lo = vec![1.0, 1.0, 1.0];
        let hi = vec![4.0, 4.0, 4.0];
        let pal_lo = est.pal(&order, &lo);
        let pal_hi = est.pal(&order, &hi);
        for t in 0..3 {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&pal_lo[t]));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&pal_hi[t]));
        }
        // The FIRST type in the order can only gain from its own threshold
        // increasing (later types may lose budget, so no global claim).
        prop_assert!(pal_hi[0] >= pal_lo[0] - 1e-9);
    }

    /// Under the paper's consumption rule, raising the budget (everything
    /// else fixed) can only raise *every* type's detection probability:
    /// predecessors consume `min(b_t, Z_t·C_t)` independently of `B`, so a
    /// larger budget weakly enlarges each per-type capacity `B_t`.
    #[test]
    fn pal_monotone_in_budget_for_every_type(seed in 0u64..200) {
        let mut spec = random_game(&cfg(3, false, 1.0), seed);
        let bank = spec.sample_bank(60, seed ^ 0xB0D);
        let order = AuditOrder::new(vec![2, 0, 1]).unwrap();
        let thresholds = vec![2.0, 3.0, 2.5];
        let mut prev = vec![0.0f64; 3];
        for budget in [1.0, 2.0, 4.0, 8.0, 16.0] {
            spec.budget = budget;
            let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
            let pal = est.pal(&order, &thresholds);
            for t in 0..3 {
                prop_assert!(
                    pal[t] >= prev[t] - 1e-12,
                    "type {t} lost detection when budget rose to {budget}: {} < {}",
                    pal[t], prev[t]
                );
            }
            prev = pal;
        }
    }

    /// A type's detection probability depends only on its predecessors, so
    /// evaluating a *prefix* must agree exactly with the full order on the
    /// prefix types — and report zero for everything after the cut.
    #[test]
    fn pal_prefix_consistent_with_full_order(seed in 0u64..200, cut in 0usize..4) {
        let spec = random_game(&cfg(3, false, 4.0), seed);
        let bank = spec.sample_bank(60, seed ^ 0x9E);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let thresholds = vec![1.5, 2.0, 3.0];
        for order in AuditOrder::enumerate_all(3) {
            let cut = cut.min(3);
            let full = est.pal(&order, &thresholds);
            let prefix = est.pal_prefix(&order.types()[..cut], &thresholds);
            for (pos, &t) in order.types().iter().enumerate() {
                if pos < cut {
                    // Same arithmetic stream → exact agreement, not approximate.
                    prop_assert_eq!(full[t], prefix[t], "order {} cut {}", order, cut);
                } else {
                    prop_assert_eq!(prefix[t], 0.0);
                }
            }
        }
    }

    /// On small games, the CGGS pipeline must agree with the brute-force
    /// gold standard: never below it (CGGS restricts the order set, ISHM
    /// restricts the threshold set), and within a few percent of it — the
    /// paper's γ² ≈ 1 observation (Tables V–VI).
    #[test]
    fn cggs_and_brute_force_objectives_agree(seed in 0u64..60) {
        let n_types = 2 + (seed % 2) as usize;
        let spec = random_game(&RandomGameConfig {
            n_attackers: 3,
            n_victims: 4,
            ..cfg(n_types, false, 3.0)
        }, seed);
        let bank = spec.sample_bank(40, seed);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let orders = AuditOrder::enumerate_all(n_types);
        let bf = solve_brute_force(&spec, &est, &orders).unwrap();

        // (a) For the brute-force optimal thresholds, column generation
        // reaches the exact master value on these tiny instances.
        let cggs_at_opt = Cggs::default().solve(&spec, &est, &bf.thresholds).unwrap();
        prop_assert!(cggs_at_opt.master.value >= bf.value - 1e-7);
        prop_assert!(
            (cggs_at_opt.master.value - bf.value).abs() <= 0.05 * bf.value.abs().max(1.0),
            "CGGS at optimal thresholds {} vs exact {}",
            cggs_at_opt.master.value, bf.value
        );

        // (b) The full heuristic pipeline (ISHM over thresholds + CGGS
        // inner) lands within tolerance of the global optimum.
        let mut eval = CggsEvaluator::new(&spec, est, Default::default());
        let ishm = Ishm::new(IshmConfig { epsilon: 0.1, ..Default::default() })
            .solve(&spec, &mut eval)
            .unwrap();
        prop_assert!(ishm.value >= bf.value - 1e-7,
            "heuristic {} beat the exhaustive optimum {}", ishm.value, bf.value);
        // ISHM is a local search: bound its optimality gap by a few percent
        // of the game's payoff scale (a pure relative bound is meaningless
        // when the optimum sits near zero).
        prop_assert!(
            ishm.value - bf.value <= 0.05 * spec.max_possible_loss().max(1.0),
            "ISHM+CGGS {} drifted from brute force {} (scale {})",
            ishm.value, bf.value, spec.max_possible_loss()
        );
    }

    /// Dedup never changes the game value.
    #[test]
    fn dedup_is_value_preserving(seed in 0u64..200) {
        let spec = random_game(&RandomGameConfig {
            n_victims: 10,
            ..cfg(3, true, 4.0)
        }, seed);
        let deduped = spec.dedup_actions();
        let bank = spec.sample_bank(50, 3);
        let est = DetectionEstimator::new(&spec, &bank, DetectionModel::PaperApprox);
        let est_d = DetectionEstimator::new(&deduped, &bank, DetectionModel::PaperApprox);
        let orders = AuditOrder::enumerate_all(3);
        let thresholds = vec![2.0, 2.0, 2.0];
        let v = MasterSolver::solve(
            &spec,
            &PayoffMatrix::build(&spec, &est, orders.clone(), &thresholds),
        ).unwrap().value;
        let vd = MasterSolver::solve(
            &deduped,
            &PayoffMatrix::build(&deduped, &est_d, orders, &thresholds),
        ).unwrap().value;
        prop_assert!((v - vd).abs() < 1e-7, "dedup changed value {v} -> {vd}");
    }
}
