//! MPS-format import/export for LP models.
//!
//! MPS is the lingua franca of LP solvers; supporting it makes the embedded
//! simplex independently checkable against external solvers (write a game
//! master problem out, solve it with any industrial solver, compare). The
//! dialect implemented is fixed-form-agnostic free MPS with the sections
//! `NAME`, `ROWS`, `COLUMNS`, `RHS`, `BOUNDS`, `ENDATA` and the bound types
//! `LO/UP/FX/FR/MI/PL`. Maximization is encoded with the common `OBJSENSE`
//! extension.

use crate::error::LpError;
use crate::problem::{Problem, Relation, Sense, VarId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serialize a problem to free-form MPS.
#[allow(clippy::needless_range_loop)] // `j` names the column AND indexes
pub fn to_mps(p: &Problem) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "NAME          ALERT_AUDIT_LP");
    let _ = writeln!(out, "OBJSENSE");
    let _ = writeln!(
        out,
        "    {}",
        match p.sense() {
            Sense::Minimize => "MIN",
            Sense::Maximize => "MAX",
        }
    );
    let _ = writeln!(out, "ROWS");
    let _ = writeln!(out, " N  COST");
    for i in 0..p.n_constraints() {
        let tag = match p.constraint_relation(i) {
            Relation::Le => 'L',
            Relation::Eq => 'E',
            Relation::Ge => 'G',
        };
        let _ = writeln!(out, " {tag}  R{i}");
    }

    // COLUMNS: objective + per-constraint coefficients, column-major.
    let _ = writeln!(out, "COLUMNS");
    let mut by_var: Vec<Vec<(usize, f64)>> = vec![Vec::new(); p.n_vars()];
    for i in 0..p.n_constraints() {
        for &(j, a) in p.constraint_terms(i) {
            by_var[j].push((i, a));
        }
    }
    for j in 0..p.n_vars() {
        let obj = p.var_objective(j);
        if obj != 0.0 {
            let _ = writeln!(out, "    X{j}  COST  {obj}");
        }
        for &(i, a) in &by_var[j] {
            let _ = writeln!(out, "    X{j}  R{i}  {a}");
        }
        if obj == 0.0 && by_var[j].is_empty() {
            // Keep empty columns alive so indices round-trip.
            let _ = writeln!(out, "    X{j}  COST  0");
        }
    }

    let _ = writeln!(out, "RHS");
    for i in 0..p.n_constraints() {
        let rhs = p.constraint_rhs(i);
        if rhs != 0.0 {
            let _ = writeln!(out, "    RHS  R{i}  {rhs}");
        }
    }

    let _ = writeln!(out, "BOUNDS");
    for j in 0..p.n_vars() {
        let (lo, hi) = p.var_bounds(j);
        match (lo == f64::NEG_INFINITY, hi == f64::INFINITY) {
            (true, true) => {
                let _ = writeln!(out, " FR BND  X{j}");
            }
            (true, false) => {
                let _ = writeln!(out, " MI BND  X{j}");
                let _ = writeln!(out, " UP BND  X{j}  {hi}");
            }
            (false, true) => {
                if lo != 0.0 {
                    let _ = writeln!(out, " LO BND  X{j}  {lo}");
                }
                // default PL upper bound
            }
            (false, false) => {
                if lo == hi {
                    let _ = writeln!(out, " FX BND  X{j}  {lo}");
                } else {
                    if lo != 0.0 {
                        let _ = writeln!(out, " LO BND  X{j}  {lo}");
                    }
                    let _ = writeln!(out, " UP BND  X{j}  {hi}");
                }
            }
        }
    }
    let _ = writeln!(out, "ENDATA");
    out
}

/// Parse free-form MPS into a [`Problem`].
///
/// Supports the sections emitted by [`to_mps`]; unknown sections raise
/// [`LpError::InvalidModel`].
pub fn from_mps(text: &str) -> Result<Problem, LpError> {
    #[derive(PartialEq)]
    enum Section {
        None,
        ObjSense,
        Rows,
        Columns,
        Rhs,
        Bounds,
        Done,
    }
    let mut section = Section::None;
    let mut sense = Sense::Minimize;
    let mut obj_row: Option<String> = None;
    let mut row_rel: Vec<(String, Relation)> = Vec::new();
    let mut row_index: HashMap<String, usize> = HashMap::new();
    // column name → (objective, terms per row index)
    let mut col_order: Vec<String> = Vec::new();
    let mut cols: HashMap<String, (f64, Vec<(usize, f64)>)> = HashMap::new();
    let mut rhs: HashMap<usize, f64> = HashMap::new();
    let mut bounds: HashMap<String, (f64, f64)> = HashMap::new();

    let bad = |msg: &str| LpError::InvalidModel(format!("MPS parse error: {msg}"));

    for raw in text.lines() {
        let line = raw.trim_end();
        if line.trim().is_empty() || line.starts_with('*') {
            continue;
        }
        let is_header = !raw.starts_with(' ') && !raw.starts_with('\t');
        if is_header {
            let mut words = line.split_whitespace();
            match words.next().unwrap_or("") {
                "NAME" => continue,
                "OBJSENSE" => section = Section::ObjSense,
                "ROWS" => section = Section::Rows,
                "COLUMNS" => section = Section::Columns,
                "RHS" => section = Section::Rhs,
                "BOUNDS" => section = Section::Bounds,
                "RANGES" => return Err(bad("RANGES section is not supported")),
                "ENDATA" => section = Section::Done,
                other => return Err(bad(&format!("unknown section {other}"))),
            }
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match section {
            Section::ObjSense => {
                sense = match fields[0] {
                    "MIN" | "MINIMIZE" => Sense::Minimize,
                    "MAX" | "MAXIMIZE" => Sense::Maximize,
                    other => return Err(bad(&format!("unknown objective sense {other}"))),
                };
            }
            Section::Rows => {
                if fields.len() != 2 {
                    return Err(bad("ROWS lines need two fields"));
                }
                match fields[0] {
                    "N" => obj_row = Some(fields[1].to_string()),
                    tag => {
                        let rel = match tag {
                            "L" => Relation::Le,
                            "G" => Relation::Ge,
                            "E" => Relation::Eq,
                            other => return Err(bad(&format!("unknown row type {other}"))),
                        };
                        row_index.insert(fields[1].to_string(), row_rel.len());
                        row_rel.push((fields[1].to_string(), rel));
                    }
                }
            }
            Section::Columns => {
                // Pairs of (row, value); either one or two pairs per line.
                if fields.len() < 3 || fields.len().is_multiple_of(2) {
                    return Err(bad("COLUMNS lines need a name plus (row, value) pairs"));
                }
                let name = fields[0].to_string();
                if !cols.contains_key(&name) {
                    col_order.push(name.clone());
                    cols.insert(name.clone(), (0.0, Vec::new()));
                }
                let entry = cols.get_mut(&name).expect("inserted above");
                for pair in fields[1..].chunks(2) {
                    let value: f64 = pair[1].parse().map_err(|_| bad("bad numeric value"))?;
                    if Some(pair[0]) == obj_row.as_deref() {
                        entry.0 = value;
                    } else {
                        let &i = row_index
                            .get(pair[0])
                            .ok_or_else(|| bad(&format!("unknown row {}", pair[0])))?;
                        entry.1.push((i, value));
                    }
                }
            }
            Section::Rhs => {
                if fields.len() < 3 || fields.len().is_multiple_of(2) {
                    return Err(bad("RHS lines need a set name plus (row, value) pairs"));
                }
                for pair in fields[1..].chunks(2) {
                    let &i = row_index
                        .get(pair[0])
                        .ok_or_else(|| bad(&format!("unknown row {}", pair[0])))?;
                    rhs.insert(i, pair[1].parse().map_err(|_| bad("bad rhs value"))?);
                }
            }
            Section::Bounds => {
                if fields.len() < 3 {
                    return Err(bad("BOUNDS lines need type, set, column"));
                }
                let name = fields[2].to_string();
                let (lo, hi) = bounds.entry(name).or_insert((0.0, f64::INFINITY));
                match fields[0] {
                    "LO" => *lo = fields[3].parse().map_err(|_| bad("bad bound"))?,
                    "UP" => *hi = fields[3].parse().map_err(|_| bad("bad bound"))?,
                    "FX" => {
                        let v: f64 = fields[3].parse().map_err(|_| bad("bad bound"))?;
                        *lo = v;
                        *hi = v;
                    }
                    "FR" => {
                        *lo = f64::NEG_INFINITY;
                        *hi = f64::INFINITY;
                    }
                    "MI" => *lo = f64::NEG_INFINITY,
                    "PL" => *hi = f64::INFINITY,
                    other => return Err(bad(&format!("unknown bound type {other}"))),
                }
            }
            Section::None => return Err(bad("data before any section header")),
            Section::Done => return Err(bad("data after ENDATA")),
        }
    }
    if obj_row.is_none() {
        return Err(bad("no objective (N) row"));
    }

    // Assemble the Problem: columns in first-appearance order.
    let mut p = Problem::new(sense);
    let mut var_ids: HashMap<String, VarId> = HashMap::new();
    for name in &col_order {
        let (obj, _) = &cols[name];
        let (lo, hi) = bounds.get(name).copied().unwrap_or((0.0, f64::INFINITY));
        var_ids.insert(name.clone(), p.add_var(name.clone(), *obj, lo, hi));
    }
    for (i, (row_name, rel)) in row_rel.iter().enumerate() {
        let mut terms = Vec::new();
        for name in &col_order {
            for &(ri, a) in &cols[name].1 {
                if ri == i {
                    terms.push((var_ids[name], a));
                }
            }
        }
        p.add_constraint(
            row_name.clone(),
            terms,
            *rel,
            rhs.get(&i).copied().unwrap_or(0.0),
        );
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wyndor() -> Problem {
        let mut p = Problem::maximize();
        let x = p.add_var("x", 3.0, 0.0, f64::INFINITY);
        let y = p.add_var("y", 5.0, 0.0, f64::INFINITY);
        p.add_constraint("c1", vec![(x, 1.0)], Relation::Le, 4.0);
        p.add_constraint("c2", vec![(y, 2.0)], Relation::Le, 12.0);
        p.add_constraint("c3", vec![(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        p
    }

    #[test]
    fn roundtrip_preserves_optimum() {
        let p = wyndor();
        let mps = to_mps(&p);
        let q = from_mps(&mps).unwrap();
        let sp = p.solve().unwrap();
        let sq = q.solve().unwrap();
        assert!((sp.objective - sq.objective).abs() < 1e-9);
        assert_eq!(p.n_vars(), q.n_vars());
        assert_eq!(p.n_constraints(), q.n_constraints());
    }

    #[test]
    fn roundtrip_bounds_and_sense() {
        let mut p = Problem::minimize();
        let a = p.add_var("a", 1.0, 2.0, 9.0);
        let b = p.add_free_var("b", 1.0);
        let c = p.add_var("c", 0.5, f64::NEG_INFINITY, 3.0);
        let d = p.add_var("d", 0.0, 4.0, 4.0); // fixed
        p.add_constraint(
            "r",
            vec![(a, 1.0), (b, 1.0), (c, 1.0), (d, 1.0)],
            Relation::Ge,
            1.0,
        );
        // Bound b below so the model is bounded.
        p.add_constraint("blb", vec![(b, 1.0)], Relation::Ge, -5.0);
        let q = from_mps(&to_mps(&p)).unwrap();
        let sp = p.solve().unwrap();
        let sq = q.solve().unwrap();
        assert!((sp.objective - sq.objective).abs() < 1e-8);
    }

    #[test]
    fn parses_equalities_and_defaults() {
        let text = "NAME T\nROWS\n N  COST\n E  R0\nCOLUMNS\n    X0  COST  2  R0  1\n    X1  COST  1  R0  1\nRHS\n    RHS  R0  5\nENDATA\n";
        let p = from_mps(text).unwrap();
        let s = p.solve().unwrap();
        // min 2x0 + x1 s.t. x0 + x1 = 5, defaults x ≥ 0 → all mass on x1.
        assert!((s.objective - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_mps("HELLO\n").is_err());
        assert!(from_mps("ROWS\n N COST\nCOLUMNS\n    X0 NOPE 1\nENDATA\n").is_err());
        assert!(from_mps("").is_err()); // no objective row
        assert!(from_mps("RANGES\n").is_err());
    }

    #[test]
    fn objsense_max_is_parsed() {
        let mps = to_mps(&wyndor());
        assert!(mps.contains("OBJSENSE"));
        assert!(mps.contains("MAX"));
        let q = from_mps(&mps).unwrap();
        assert_eq!(q.sense(), Sense::Maximize);
    }
}
