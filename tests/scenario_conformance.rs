//! Golden cross-solver conformance net.
//!
//! For every scenario in the full registry, solve the conformance-scale
//! game with every applicable (solver mode × detection model) cell and
//! compare objective values and thresholds against the committed
//! snapshots in `tests/golden/<key>.json`. The whole pipeline — scenario
//! generators, sample banks, detection engine, LP, CGGS, ISHM — is
//! deterministic, so any drift in any number on any scenario fails here
//! with a precise diff.
//!
//! Regenerate after an *intentional* change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test scenario_conformance
//! ```
//!
//! CI runs the suite in release mode and then verifies regeneration is a
//! no-op, so stale snapshots cannot land.

use alert_audit::conformance::{golden_dir, golden_path, run_scenario};
use alert_audit::json::Value;
use alert_audit::scenario::registry;

fn update_mode() -> bool {
    std::env::var("UPDATE_GOLDEN")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// One test per registry scenario would need a proc macro; instead run
/// the whole matrix and aggregate failures so a drift report shows every
/// broken cell at once.
#[test]
fn every_registry_scenario_matches_its_golden_snapshot() {
    let reg = registry();
    let update = update_mode();
    if update {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
    }
    let mut failures: Vec<String> = Vec::new();
    for sc in reg.iter() {
        let report = match run_scenario(sc) {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!("{}: failed to solve: {e}", sc.key()));
                continue;
            }
        };
        // Intractable cells are explicit, not silent: surface each skip
        // the way `cargo test` surfaces an `#[ignore]`d test.
        for s in &report.skipped {
            eprintln!(
                "ignored: {} {}/{}: {}",
                sc.key(),
                s.solver,
                s.detection,
                s.reason
            );
        }
        let path = golden_path(sc.key());
        if update {
            std::fs::write(&path, report.to_json().render()).expect("write golden");
            eprintln!("regenerated {}", path.display());
            continue;
        }
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                failures.push(format!(
                    "{}: no golden snapshot at {} (run UPDATE_GOLDEN=1 to create)",
                    sc.key(),
                    path.display()
                ));
                continue;
            }
        };
        let golden = match Value::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                failures.push(format!("{}: golden file unparseable: {e}", sc.key()));
                continue;
            }
        };
        if let Err(diff) = report.compare_to_golden(&golden) {
            failures.push(format!("{} drifted:\n{diff}", sc.key()));
        }
    }
    assert!(
        failures.is_empty(),
        "conformance failures:\n{}",
        failures.join("\n---\n")
    );
}

/// Every snapshot on disk must correspond to a registered scenario —
/// deleting or renaming a scenario without retiring its golden file is an
/// error (dead snapshots would silently stop guarding anything).
#[test]
fn no_stray_golden_snapshots() {
    let reg = registry();
    let keys: Vec<String> = reg.keys().iter().map(|k| k.to_string()).collect();
    let dir = golden_dir();
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(_) => return, // no goldens yet (fresh checkout mid-update)
    };
    for entry in entries {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy().to_string();
        if name.ends_with(".snap") {
            // The persistence layer pins its on-disk byte layout with one
            // binary golden per format version (see tests/persist_roundtrip.rs).
            // A version bump must retire the old file alongside adding the
            // new one, or the stale pin would linger here unguarded.
            let want = format!(
                "persist_format_v{}.snap",
                alert_audit::persist::FORMAT_VERSION
            );
            assert_eq!(
                name, want,
                "stray binary golden {name}: the current format golden is {want}"
            );
            continue;
        }
        let Some(stem) = name.strip_suffix(".json") else {
            panic!("unexpected file in tests/golden: {name}");
        };
        assert!(
            keys.iter().any(|k| k == stem),
            "stray golden snapshot {name}: no scenario with key '{stem}'"
        );
    }
}

/// The ISHM exact-inner gate must be *explicit*: every registry scenario
/// either solves the ishm-exact cells or reports them as skipped with a
/// reason naming the gate — and the skip must fire exactly for the
/// scenarios whose conformance-scale game exceeds `EXACT_MAX_TYPES`.
#[test]
fn ishm_exact_gating_is_explicit() {
    use alert_audit::conformance::EXACT_MAX_TYPES;
    let reg = registry();
    for sc in reg.iter() {
        let spec = sc.build_small(sc.default_seed()).expect("build_small");
        let report = run_scenario(sc).expect("matrix solves");
        let solved_exact = report.cells.iter().any(|c| c.solver == "ishm-exact");
        let skipped_exact: Vec<_> = report
            .skipped
            .iter()
            .filter(|s| s.solver == "ishm-exact")
            .collect();
        if spec.n_types() > EXACT_MAX_TYPES {
            assert!(
                !solved_exact && skipped_exact.len() == 3,
                "{}: {} types must skip ishm-exact with 3 explicit markers (got {} markers)",
                sc.key(),
                spec.n_types(),
                skipped_exact.len()
            );
            assert!(
                ["emr-reaa", "emr-reaa-empirical", "syn-wide25", "syn-wide50"].contains(&sc.key()),
                "{}: unexpected scenario above the exact gate",
                sc.key()
            );
            for s in &skipped_exact {
                assert!(
                    s.reason.contains("EXACT_MAX_TYPES"),
                    "vague reason: {}",
                    s.reason
                );
            }
        } else {
            assert!(
                solved_exact && skipped_exact.is_empty(),
                "{}: {} types must solve ishm-exact cells",
                sc.key(),
                spec.n_types()
            );
        }
    }
}

/// The strategic-attacker scenarios must pin their model-specific cells
/// in the golden net, on top of the standard matrix.
#[test]
fn strategic_scenarios_pin_their_model_cells() {
    if update_mode() {
        return; // files may be mid-regeneration
    }
    for (key, solver) in [
        ("syn-quantal", "ishm-qr"),
        ("syn-general-sum", "ishm-gsum"),
        ("syn-adaptive", "adaptive-soak"),
    ] {
        let text = std::fs::read_to_string(golden_path(key))
            .unwrap_or_else(|_| panic!("{key}: missing golden snapshot"));
        let golden = Value::parse(&text).expect("parseable golden");
        let cells = golden
            .get("cells")
            .and_then(Value::as_arr)
            .unwrap_or_default();
        for detection in ["paper-approx", "attack-inclusive", "operational"] {
            assert!(
                cells.iter().any(|c| {
                    c.get("solver").and_then(Value::as_str) == Some(solver)
                        && c.get("detection").and_then(Value::as_str) == Some(detection)
                }),
                "{key}: golden missing cell {solver}/{detection}"
            );
        }
    }
}

/// The acceptance floor of the substrate: at least 8 scenarios spanning
/// all four substrates, each with a committed snapshot covering at least
/// CGGS plus the width-appropriate ISHM mode (ISHM-CGGS up to the
/// full-ISHM gate, the planner's decomposed tier past it) under all
/// three detection models.
#[test]
fn registry_coverage_floor() {
    use alert_audit::conformance::ISHM_FULL_MAX_TYPES;
    let reg = registry();
    assert!(reg.len() >= 8, "registry shrank to {}", reg.len());
    if update_mode() {
        return; // files may be mid-regeneration
    }
    for sc in reg.iter() {
        let path = golden_path(sc.key());
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|_| panic!("{}: missing golden snapshot", sc.key()));
        let golden = Value::parse(&text).expect("parseable golden");
        let n_types = golden
            .get("n_types")
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("{}: golden lacks n_types", sc.key()))
            as usize;
        let ishm_mode = if n_types > ISHM_FULL_MAX_TYPES {
            "ishm-planner"
        } else {
            "ishm-cggs"
        };
        let cells = golden
            .get("cells")
            .and_then(Value::as_arr)
            .unwrap_or_default();
        for solver in ["cggs", ishm_mode] {
            for detection in ["paper-approx", "attack-inclusive", "operational"] {
                assert!(
                    cells.iter().any(|c| {
                        c.get("solver").and_then(Value::as_str) == Some(solver)
                            && c.get("detection").and_then(Value::as_str) == Some(detection)
                    }),
                    "{}: golden missing cell {solver}/{detection}",
                    sc.key()
                );
            }
        }
    }
}
