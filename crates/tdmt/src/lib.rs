//! TDMT — a threat-detection and misuse-tracking substrate.
//!
//! The paper's auditing game sits on top of a TDMT module that watches
//! database access events and raises typed alerts ("the alert types are
//! specifically predefined by the administrator officials in ad hoc
//! applications", Section I). This crate implements that substrate:
//!
//! * [`event`] — access events `⟨e, v⟩` with typed attribute payloads;
//! * [`rules`] — predicate rules over events and a [`rules::RuleEngine`]
//!   that maps each event to at most one (possibly *combination*) alert
//!   type, mirroring how Rea A merges co-firing base rules ("we redefine
//!   the set of alert types to also consider combinations of alert
//!   categories", Section V.A);
//! * [`log`] — day-partitioned audit logs with binary serialization,
//!   repeated-access filtering (the paper drops 79.5% repeats), and
//!   per-day alert counting;
//! * [`profile`] — fitting per-type alert-count distributions `F_t` from a
//!   labelled log, the bridge into `audit-game`'s `GameSpec`;
//! * [`scenario`] — the `tdmt-insider` registry scenario: a synthetic
//!   event log labelled by a combination rule engine and compiled down to
//!   a solvable game.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod event;
pub mod log;
pub mod profile;
pub mod rules;
pub mod scenario;

pub use event::{AccessEvent, EntityId, RecordId};
pub use log::AuditLog;
pub use profile::AlertProfile;
pub use rules::{CombinationPolicy, Rule, RuleEngine};
pub use scenario::InsiderScenario;
